#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace greencap::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(10.0);
  g.add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(Histogram, BucketsObservations) {
  Histogram h{{1.0, 10.0, 100.0}};
  h.observe(0.5);   // <= 1
  h.observe(1.0);   // <= 1 (upper edge inclusive)
  h.observe(5.0);   // <= 10
  h.observe(1000);  // overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 0u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.5 / 4.0);
}

TEST(Histogram, DefaultDurationBucketsCoverKernelToFactorization) {
  Histogram h{{}};
  EXPECT_FALSE(h.bounds().empty());
  EXPECT_LE(h.bounds().front(), 1e-6);
  EXPECT_GE(h.bounds().back(), 100.0);
  for (std::size_t i = 1; i < h.bounds().size(); ++i) {
    EXPECT_LT(h.bounds()[i - 1], h.bounds()[i]);
  }
}

TEST(Histogram, RejectsUnsortedBounds) {
  EXPECT_THROW(Histogram({3.0, 1.0, 2.0}), std::invalid_argument);
}

TEST(MetricsRegistry, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("rt.tasks");
  a.inc();
  Counter& b = reg.counter("rt.tasks");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, ReferencesSurviveLaterInsertions) {
  MetricsRegistry reg;
  Counter& first = reg.counter("a");
  // Churn the map: references must stay valid (node-based storage).
  for (int i = 0; i < 100; ++i) {
    reg.counter("churn" + std::to_string(i)).inc();
  }
  first.inc(7);
  EXPECT_EQ(reg.find_counter("a")->value(), 7u);
}

TEST(MetricsRegistry, FindReturnsNullForMissing) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, JsonContainsAllSections) {
  MetricsRegistry reg;
  reg.counter("rt.tasks_completed").inc(3);
  reg.gauge("power.cap_w.gpu0").set(216.0);
  reg.histogram("rt.exec_s.gemm", {0.01, 0.1}).observe(0.05);
  std::ostringstream oss;
  reg.write_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"rt.tasks_completed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"power.cap_w.gpu0\": 216"), std::string::npos);
  EXPECT_NE(json.find("\"rt.exec_s.gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsRegistry, ClearEmptiesEverything) {
  MetricsRegistry reg;
  reg.counter("a");
  reg.gauge("b");
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

}  // namespace
}  // namespace greencap::obs
