#include "obs/trace_export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace greencap::obs {
namespace {

// ---------------------------------------------------------------------------
// A strict RFC 8259 syntax checker, small enough to live in the test. It
// validates structure only (no semantics): if this accepts the document,
// chrome://tracing and Perfetto's JSON importer will parse it.
class JsonValidator {
 public:
  static bool valid(const std::string& text) {
    JsonValidator v{text};
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(const std::string& text) : text_{text} {}

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (!consume(*p)) return false;
    }
    return true;
  }
  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(peek()))) return false;
            ++pos_;
          }
        } else if (std::string{"\"\\/bfnrt"}.find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }
  bool number() {
    consume('-');
    if (consume('0')) {
      // no leading zeros
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      return false;
    }
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }
  bool value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonValidatorSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(JsonValidator::valid(R"({"a": [1, 2.5, -3e-2], "b": "x\"y", "c": null})"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a": })"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a": 1,})"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a": 1} extra)"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\": \"raw\nnewline\"}"));
}
// ---------------------------------------------------------------------------

sim::Trace sample_trace() {
  sim::Trace trace;
  trace.enable();
  trace.add_span({sim::SpanKind::kTask, 0, 7, "gemm,tile(1,2)", sim::SimTime::millis(1),
                  sim::SimTime::millis(3)});
  trace.add_span({sim::SpanKind::kTask, 1, 8, "syrk \"odd\"", sim::SimTime::millis(2),
                  sim::SimTime::millis(4)});
  trace.add_span({sim::SpanKind::kTransfer, 1000, 7, "xfer:A(0,0)", sim::SimTime::millis(0),
                  sim::SimTime::millis(1)});
  trace.add_marker("power_cap gpu0 216W", sim::SimTime::millis(2));
  return trace;
}

TEST(ChromeTrace, ProducesValidJson) {
  const sim::Trace trace = sample_trace();
  std::ostringstream oss;
  write_chrome_trace(oss, trace);
  EXPECT_TRUE(JsonValidator::valid(oss.str())) << oss.str();
}

TEST(ChromeTrace, ContainsSpansMarkersAndMetadata) {
  const sim::Trace trace = sample_trace();
  ChromeTraceOptions options;
  options.worker_names = {"CUDA 0 (gpu0)", "CUDA 1 (gpu1)"};
  std::ostringstream oss;
  write_chrome_trace(oss, trace, options);
  const std::string json = oss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Task span: complete event, µs timestamps.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 2000"), std::string::npos);
  // Names pass through escaped, not mangled.
  EXPECT_NE(json.find("gemm,tile(1,2)"), std::string::npos);
  EXPECT_NE(json.find("syrk \\\"odd\\\""), std::string::npos);
  // Marker as a global instant.
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("power_cap gpu0 216W"), std::string::npos);
  // Transfer row under the links process, de-based tid.
  EXPECT_NE(json.find("\"pid\": 2, \"tid\": 0"), std::string::npos);
  // Worker labels from the options.
  EXPECT_NE(json.find("CUDA 1 (gpu1)"), std::string::npos);
}

TEST(ChromeTrace, TelemetryBecomesCounterEvents) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  sampler.add_channel("gpu0.power_w", "W", [](sim::SimTime) { return 250.0; });
  sim.after(sim::SimTime::millis(2), [] {});
  sampler.start(sim, sim::SimTime::millis(1));
  sim.run();
  sampler.stop();

  const sim::Trace trace = sample_trace();
  ChromeTraceOptions options;
  options.telemetry = &sampler.series();
  std::ostringstream oss;
  write_chrome_trace(oss, trace, options);
  const std::string json = oss.str();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"gpu0.power_w\""), std::string::npos);
  EXPECT_NE(json.find("\"W\": 250"), std::string::npos);
}

TEST(ChromeTrace, EmptyTraceIsStillValid) {
  sim::Trace trace;  // disabled, no spans
  std::ostringstream oss;
  write_chrome_trace(oss, trace);
  EXPECT_TRUE(JsonValidator::valid(oss.str())) << oss.str();
}

}  // namespace
}  // namespace greencap::obs
