#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "hw/platform.hpp"
#include "hw/presets.hpp"
#include "sim/simulator.hpp"

namespace greencap::obs {
namespace {

/// Keeps the simulator busy until `end` so the sampler has activity to
/// bracket (it disarms itself once the queue drains).
void keep_alive_until(sim::Simulator& sim, double end_s, double step_s = 0.0101) {
  for (double t = step_s; t < end_s; t += step_s) {
    sim.at(sim::SimTime::seconds(t), [] {});
  }
  sim.at(sim::SimTime::seconds(end_s), [] {});
}

TEST(TelemetrySampler, SamplesAtConfiguredPeriod) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  sampler.add_channel("t_ms", "ms", [](sim::SimTime now) { return now.sec() * 1e3; });
  keep_alive_until(sim, 0.100);
  sampler.start(sim, sim::SimTime::millis(10));
  sim.run();
  sampler.stop();

  const TelemetrySeries& series = sampler.series();
  ASSERT_EQ(series.channels().size(), 1u);
  EXPECT_EQ(series.channels()[0].name, "t_ms");
  // Initial sample at t=0 plus one every 10 ms over a 100 ms run.
  ASSERT_GE(series.samples().size(), 10u);
  EXPECT_DOUBLE_EQ(series.samples()[0].t.sec(), 0.0);
  EXPECT_NEAR(series.samples()[1].t.sec(), 0.010, 1e-12);
  EXPECT_DOUBLE_EQ(series.samples()[1].values[0], 10.0);
}

TEST(TelemetrySampler, DisarmsWhenQueueDrains) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  sampler.add_channel("one", "", [](sim::SimTime) { return 1.0; });
  sim.after(sim::SimTime::millis(5), [] {});
  sampler.start(sim, sim::SimTime::millis(1));
  // If the sampler re-armed unconditionally this would never return.
  sim.run();
  sampler.stop();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.series().samples().size(), 2u);
}

TEST(TelemetrySampler, StopRecordsFinalPartialIntervalAndCancelsTick) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  sampler.add_channel("one", "", [](sim::SimTime) { return 1.0; });
  keep_alive_until(sim, 0.0155);  // not a multiple of the 10 ms period
  sampler.start(sim, sim::SimTime::millis(10));
  sim.run_until(sim::SimTime::seconds(0.0155));
  sampler.stop();
  const auto& samples = sampler.series().samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_NEAR(samples.back().t.sec(), 0.0155, 1e-12);
  // Constant channel: right-rectangle integral = value * window length.
  EXPECT_NEAR(sampler.series().integrate(0), 0.0155, 1e-12);
  // stop() cancelled the re-armed tick: nothing fires past the stop point.
  const std::size_t rows = samples.size();
  sim.run();
  EXPECT_EQ(sampler.series().samples().size(), rows);
}

TEST(TelemetrySampler, StopWithoutStartIsSafe) {
  TelemetrySampler sampler;
  sampler.stop();
  EXPECT_TRUE(sampler.series().empty());
}

TEST(TelemetrySampler, RejectsNonPositivePeriod) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  EXPECT_THROW(sampler.start(sim, sim::SimTime::zero()), std::invalid_argument);
}

// The pattern the platform power channels rely on: a channel reporting
// delta(E)/delta(t) of any cumulative quantity integrates back to exactly
// the total delta, at any sampling period and phase.
TEST(TelemetrySeries, IntervalAverageChannelTelescopes) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  auto energy = [](double t) { return 100.0 * t + 40.0 * t * t; };  // ramping power
  double prev_t = 0.0;
  sampler.add_channel("power", "W", [energy, prev_t](sim::SimTime now) mutable {
    const double t = now.sec();
    const double watts = t > prev_t ? (energy(t) - energy(prev_t)) / (t - prev_t) : 100.0;
    prev_t = t;
    return watts;
  });
  keep_alive_until(sim, 0.250, 0.0173);  // deliberately incommensurate
  sampler.start(sim, sim::SimTime::millis(7));
  sim.run();
  sampler.stop();
  // The last tick may land up to one period past the last event; the
  // integral telescopes to the cumulative total at that instant exactly.
  const double t_end = sampler.series().samples().back().t.sec();
  EXPECT_GE(t_end, 0.250);
  EXPECT_NEAR(sampler.series().integrate(0), energy(t_end), 1e-9);
}

TEST(TelemetrySeries, ChannelIndexAndMax) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  sampler.add_channel("a", "", [](sim::SimTime) { return 1.0; });
  sampler.add_channel("b", "", [](sim::SimTime now) { return now.sec(); });
  keep_alive_until(sim, 0.02);
  sampler.start(sim, sim::SimTime::millis(5));
  sim.run();
  sampler.stop();
  const TelemetrySeries& series = sampler.series();
  EXPECT_EQ(series.channel_index("b"), 1);
  EXPECT_EQ(series.channel_index("zzz"), -1);
  EXPECT_NEAR(series.max_value(1), 0.02, 1e-12);
}

TEST(TelemetrySeries, JsonAndCsvExports) {
  sim::Simulator sim;
  TelemetrySampler sampler;
  sampler.add_channel("gpu0.power_w", "W", [](sim::SimTime) { return 250.0; });
  keep_alive_until(sim, 0.01);
  sampler.start(sim, sim::SimTime::millis(5));
  sim.run();
  sampler.stop();

  std::ostringstream json;
  sampler.series().write_json(json);
  EXPECT_NE(json.str().find("\"gpu0.power_w\""), std::string::npos);
  EXPECT_NE(json.str().find("\"unit\": \"W\""), std::string::npos);
  EXPECT_NE(json.str().find("250"), std::string::npos);

  std::ostringstream csv;
  sampler.series().write_csv(csv);
  EXPECT_EQ(csv.str().rfind("time_s,gpu0.power_w\n", 0), 0u);
  EXPECT_NE(csv.str().find(",250"), std::string::npos);
}

// Platform channels: the rectangle integral of each power channel must
// reproduce the exact energy meters, not just approximate them.
TEST(PlatformChannels, PowerIntegralMatchesEnergyMeters) {
  hw::Platform platform{hw::presets::platform_32_amd_4_a100()};
  sim::Simulator sim;
  TelemetrySampler sampler;
  attach_platform_channels(sampler, platform);

  // A cap change partway through makes the draw time-varying.
  sim.at(sim::SimTime::millis(40), [&] {
    platform.gpu(0).set_power_cap(0.5 * platform.gpu(0).spec().tdp_w, sim.now());
  });
  keep_alive_until(sim, 0.100, 0.0137);
  sampler.start(sim, sim::SimTime::millis(9));  // incommensurate with events
  sim.run();
  sampler.stop();

  const hw::EnergyReading reading = platform.read_energy(sim.now());
  const TelemetrySeries& series = sampler.series();
  for (std::size_t g = 0; g < platform.gpu_count(); ++g) {
    const auto chan = series.channel_index("gpu" + std::to_string(g) + ".power_w");
    ASSERT_GE(chan, 0);
    const double integral = series.integrate(static_cast<std::size_t>(chan));
    EXPECT_NEAR(integral, reading.gpu_joules[g], 1e-6 + 0.001 * reading.gpu_joules[g]) << "gpu" << g;
    EXPECT_GT(integral, 0.0);  // idle draw is nonzero
  }
  for (std::size_t p = 0; p < platform.cpu_count(); ++p) {
    const auto chan = series.channel_index("cpu" + std::to_string(p) + ".power_w");
    ASSERT_GE(chan, 0);
    EXPECT_NEAR(series.integrate(static_cast<std::size_t>(chan)), reading.cpu_joules[p],
                1e-6 + 0.001 * reading.cpu_joules[p])
        << "cpu" << p;
  }
  // The cumulative-energy channels end at the meter readings too.
  const auto e0 = series.channel_index("gpu0.energy_j");
  ASSERT_GE(e0, 0);
  EXPECT_NEAR(series.samples().back().values[static_cast<std::size_t>(e0)],
              reading.gpu_joules[0], 1e-9);
}

}  // namespace
}  // namespace greencap::obs
