// End-to-end observability: one experiment run with everything enabled
// must yield a consistent trace, metrics, telemetry and decision log —
// and, crucially, telemetry that agrees with the exact energy accounting.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "obs/trace_export.hpp"

namespace greencap::core {
namespace {

ExperimentConfig small_potrf() {
  ExperimentConfig cfg;
  cfg.platform = "32-AMD-4-A100";
  cfg.op = Operation::kPotrf;
  cfg.precision = hw::Precision::kDouble;
  cfg.nb = 2880;
  cfg.n = 2880 * 8;
  cfg.gpu_config = power::GpuConfig::parse("HHBB");  // unbalanced: caps change
  return cfg;
}

class ObservabilityRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentConfig cfg = small_potrf();
    cfg.obs.trace = true;
    cfg.obs.metrics = true;
    cfg.obs.decision_log = true;
    cfg.obs.telemetry_period_ms = 5.0;
    result_ = new ExperimentResult{run_experiment(cfg)};
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  static const ExperimentResult& result() { return *result_; }
  static const ObservabilityData& data() { return *result_->observability; }

 private:
  static ExperimentResult* result_;
};

ExperimentResult* ObservabilityRun::result_ = nullptr;

TEST_F(ObservabilityRun, ArtifactsArePopulated) {
  ASSERT_NE(result().observability, nullptr);
  EXPECT_FALSE(data().trace.spans().empty());
  EXPECT_FALSE(data().metrics.empty());
  EXPECT_FALSE(data().telemetry.empty());
  EXPECT_FALSE(data().decisions.empty());
  EXPECT_FALSE(data().worker_names.empty());
}

TEST_F(ObservabilityRun, TraceScheduleIsConsistent) {
  EXPECT_TRUE(data().trace.resource_spans_disjoint());
  // The HHBB config applies caps, which must appear as markers.
  bool saw_cap_marker = false;
  for (const auto& m : data().trace.markers()) {
    saw_cap_marker |= m.name.find("power_cap") != std::string::npos;
  }
  EXPECT_TRUE(saw_cap_marker);
}

TEST_F(ObservabilityRun, MetricsAgreeWithRuntimeStats) {
  const obs::MetricsRegistry& reg = data().metrics;
  const obs::Counter* completed = reg.find_counter("rt.tasks_completed");
  ASSERT_NE(completed, nullptr);
  // The counter sees calibration tasks too, so it can only exceed the
  // measured operation's own task count.
  EXPECT_GE(completed->value(), result().stats.tasks_completed);
  const obs::Histogram* exec = reg.find_histogram("rt.exec_s.dpotrf");
  ASSERT_NE(exec, nullptr);
  EXPECT_GT(exec->count(), 0u);
  EXPECT_GT(exec->mean(), 0.0);
  EXPECT_GT(reg.find_gauge("exp.gflops")->value(), 0.0);
}

// The acceptance bar for the telemetry sampler: integrating each GPU's
// power channel over the run reproduces the energy meter within 1 %.
TEST_F(ObservabilityRun, PowerIntegralMatchesEnergyMeterWithin1Pct) {
  const obs::TelemetrySeries& series = data().telemetry;
  ASSERT_GE(series.samples().size(), 3u);
  for (std::size_t g = 0; g < result().energy.gpu_joules.size(); ++g) {
    const auto chan = series.channel_index("gpu" + std::to_string(g) + ".power_w");
    ASSERT_GE(chan, 0);
    const double integral = series.integrate(static_cast<std::size_t>(chan));
    const double meter = result().energy.gpu_joules[g];
    ASSERT_GT(meter, 0.0);
    EXPECT_NEAR(integral, meter, 0.01 * meter) << "gpu" << g;
  }
  double cpu_integral = 0.0, cpu_meter = 0.0;
  for (std::size_t p = 0; p < result().energy.cpu_joules.size(); ++p) {
    const auto chan = series.channel_index("cpu" + std::to_string(p) + ".power_w");
    ASSERT_GE(chan, 0);
    cpu_integral += series.integrate(static_cast<std::size_t>(chan));
    cpu_meter += result().energy.cpu_joules[p];
  }
  EXPECT_NEAR(cpu_integral, cpu_meter, 0.01 * cpu_meter);
}

TEST_F(ObservabilityRun, DecisionsRealizedAndModelsAccurate) {
  const obs::DecisionLog& log = data().decisions;
  std::size_t realized = 0;
  for (const obs::Decision& d : log.decisions()) {
    EXPECT_GE(d.chosen_worker, 0);
    EXPECT_FALSE(d.codelet.empty());
    EXPECT_GE(d.queue_wait_s, 0.0);
    if (d.realized()) ++realized;
  }
  EXPECT_EQ(realized, log.size());  // every dispatched task retired
  // Noise-free simulation + freshly calibrated models: expectations are
  // essentially exact, which is what "recalibration informs the
  // scheduler" looks like in the log.
  EXPECT_LT(log.overall_mean_rel_error(), 0.05);
  EXPECT_FALSE(log.accuracy_report().empty());
}

TEST_F(ObservabilityRun, ExportsProduceOutput) {
  std::ostringstream trace_json;
  obs::ChromeTraceOptions opts;
  opts.telemetry = &data().telemetry;
  opts.worker_names = data().worker_names;
  obs::write_chrome_trace(trace_json, data().trace, opts);
  EXPECT_GT(trace_json.str().size(), 1000u);
  EXPECT_NE(trace_json.str().find("\"ph\": \"C\""), std::string::npos);

  std::ostringstream decisions;
  data().decisions.write_json(decisions);
  EXPECT_NE(decisions.str().find("\"alternatives\""), std::string::npos);
}

TEST(ObservabilityOff, ResultCarriesNoArtifacts) {
  const ExperimentResult r = run_experiment(small_potrf());
  EXPECT_EQ(r.observability, nullptr);
  EXPECT_GT(r.gflops, 0.0);
}

TEST(ObservabilityOff, ResultsIdenticalWithAndWithoutObservability) {
  ExperimentConfig plain = small_potrf();
  ExperimentConfig observed = small_potrf();
  observed.obs.trace = true;
  observed.obs.metrics = true;
  observed.obs.decision_log = true;
  observed.obs.telemetry_period_ms = 2.0;
  const ExperimentResult a = run_experiment(plain);
  const ExperimentResult b = run_experiment(observed);
  // Observation must not perturb the simulation: same schedule, same
  // makespan. Energy may differ in the last ulps only — the telemetry
  // probes advance the (exact) meters at intermediate instants, which
  // reorders the floating-point accumulation.
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.gpu_tasks, b.gpu_tasks);
  EXPECT_EQ(a.cpu_tasks, b.cpu_tasks);
  EXPECT_NEAR(a.total_energy_j, b.total_energy_j, 1e-9 * a.total_energy_j);
}

}  // namespace
}  // namespace greencap::core
