#include "obs/decision_log.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace greencap::obs {
namespace {

Decision make_decision(const std::string& codelet, const std::string& arch, double expected) {
  Decision d;
  d.task = 1;
  d.codelet = codelet;
  d.worker_arch = arch;
  d.chosen_worker = 0;
  d.expected_exec_s = expected;
  return d;
}

TEST(Decision, RelativeErrorAgainstRealized) {
  Decision d = make_decision("gemm", "cuda", 0.012);
  EXPECT_FALSE(d.realized());
  EXPECT_DOUBLE_EQ(d.relative_error(), 0.0);
  d.realized_exec_s = 0.010;
  EXPECT_TRUE(d.realized());
  EXPECT_NEAR(d.relative_error(), 0.2, 1e-12);  // expected 20 % above reality
}

TEST(DecisionLog, AddAndRealizeRoundTrip) {
  DecisionLog log;
  const std::size_t i = log.add(make_decision("gemm", "cuda", 0.012));
  const std::size_t j = log.add(make_decision("syrk", "cpu", 0.4));
  EXPECT_EQ(log.size(), 2u);
  log.realize(i, 0.010);
  EXPECT_TRUE(log.decisions()[i].realized());
  EXPECT_FALSE(log.decisions()[j].realized());
}

TEST(DecisionLog, AccuracyReportGroupsByCodeletAndArch) {
  DecisionLog log;
  // gemm/cuda: model overestimates by 10 % then underestimates by 10 %.
  log.realize(log.add(make_decision("gemm", "cuda", 1.1)), 1.0);
  log.realize(log.add(make_decision("gemm", "cuda", 0.9)), 1.0);
  // gemm/cpu: spot on.
  log.realize(log.add(make_decision("gemm", "cpu", 2.0)), 2.0);
  // Unrealized decision must not pollute the aggregates.
  log.add(make_decision("gemm", "cuda", 5.0));

  const auto report = log.accuracy_report();
  ASSERT_EQ(report.size(), 2u);  // (gemm,cpu) and (gemm,cuda)
  const ModelAccuracy* cuda = nullptr;
  const ModelAccuracy* cpu = nullptr;
  for (const auto& row : report) {
    (row.arch == "cuda" ? cuda : cpu) = &row;
  }
  ASSERT_NE(cuda, nullptr);
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cuda->samples, 2u);
  EXPECT_NEAR(cuda->mean_rel_error, 0.1, 1e-12);     // |±10 %| averages to 10 %
  EXPECT_NEAR(cuda->mean_signed_error, 0.0, 1e-12);  // ...but signed errors cancel
  EXPECT_NEAR(cuda->worst_rel_error, 0.1, 1e-12);
  EXPECT_EQ(cpu->samples, 1u);
  EXPECT_NEAR(cpu->mean_rel_error, 0.0, 1e-12);

  EXPECT_NEAR(log.overall_mean_rel_error(), 0.2 / 3.0, 1e-12);
}

TEST(DecisionLog, JsonListsDecisionsWithAlternatives) {
  DecisionLog log;
  Decision d = make_decision("gemm", "cuda", 0.012);
  d.alternatives.push_back({0, 0.012, 0.001, 3.5});
  d.alternatives.push_back({4, 0.300, 0.0, 9.0});
  log.realize(log.add(d), 0.011);
  std::ostringstream oss;
  log.write_json(oss);
  const std::string json = oss.str();
  EXPECT_NE(json.find("\"decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"codelet\": \"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"alternatives\""), std::string::npos);
  EXPECT_NE(json.find("0.012"), std::string::npos);
  EXPECT_NE(json.find("0.011"), std::string::npos);
}

TEST(DecisionLog, PrintAccuracyRendersTable) {
  DecisionLog log;
  log.realize(log.add(make_decision("potrf", "cuda", 0.02)), 0.025);
  std::ostringstream oss;
  log.print_accuracy(oss);
  EXPECT_NE(oss.str().find("potrf"), std::string::npos);
  EXPECT_NE(oss.str().find("cuda"), std::string::npos);
}

}  // namespace
}  // namespace greencap::obs
