#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace greencap::sim {
namespace {

Span make_span(std::int32_t resource, double begin, double end, SpanKind kind = SpanKind::kTask) {
  return Span{kind, resource, 0, "k", SimTime::seconds(begin), SimTime::seconds(end)};
}

TEST(Trace, DisabledByDefault) {
  Trace trace;
  trace.add_span(make_span(0, 0.0, 1.0));
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(0, 0.0, 1.0));
  trace.add_marker("cap change", SimTime::seconds(0.5));
  EXPECT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.markers().size(), 1u);
}

TEST(Trace, SpansOnFiltersAndSorts) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(1, 2.0, 3.0));
  trace.add_span(make_span(0, 0.0, 1.0));
  trace.add_span(make_span(1, 0.0, 1.0));
  const auto spans = trace.spans_on(1);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].begin, SimTime::zero());
  EXPECT_EQ(spans[1].begin, SimTime::seconds(2.0));
}

TEST(Trace, BusyTimeSumsDurations) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(2, 0.0, 1.5));
  trace.add_span(make_span(2, 2.0, 3.0));
  trace.add_span(make_span(3, 0.0, 10.0));
  EXPECT_DOUBLE_EQ(trace.busy_time(2).sec(), 2.5);
}

TEST(Trace, DisjointDetectsOverlap) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(0, 0.0, 2.0));
  trace.add_span(make_span(0, 1.0, 3.0));
  EXPECT_FALSE(trace.resource_spans_disjoint());
}

TEST(Trace, TouchingSpansAreDisjoint) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(0, 0.0, 1.0));
  trace.add_span(make_span(0, 1.0, 2.0));
  EXPECT_TRUE(trace.resource_spans_disjoint());
}

TEST(Trace, TransfersMayOverlap) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(0, 0.0, 2.0, SpanKind::kTransfer));
  trace.add_span(make_span(0, 1.0, 3.0, SpanKind::kTransfer));
  EXPECT_TRUE(trace.resource_spans_disjoint());
}

TEST(Trace, ClearEmpties) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(0, 0.0, 1.0));
  trace.clear();
  EXPECT_TRUE(trace.spans().empty());
}

TEST(Trace, CsvHasHeaderAndRows) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(0, 0.0, 1.0));
  std::ostringstream oss;
  trace.write_csv(oss);
  const std::string csv = oss.str();
  EXPECT_NE(csv.find("kind,resource"), std::string::npos);
  EXPECT_NE(csv.find("task,0"), std::string::npos);
}

TEST(Trace, CsvQuotesNamesWithCommasAndQuotes) {
  Trace trace;
  trace.enable();
  Span span = make_span(0, 0.0, 1.0);
  span.name = "gemm,tile(1,2)";
  trace.add_span(span);
  Span quoted = make_span(1, 1.0, 2.0);
  quoted.name = "say \"hi\"";
  trace.add_span(quoted);
  std::ostringstream oss;
  trace.write_csv(oss);
  const std::string csv = oss.str();
  // RFC 4180: comma-bearing field quoted, embedded quotes doubled.
  EXPECT_NE(csv.find("task,0,0,\"gemm,tile(1,2)\",0,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("task,1,0,\"say \"\"hi\"\"\",1,2"), std::string::npos) << csv;
}

TEST(Trace, CsvLeavesPlainNamesUnquoted) {
  Trace trace;
  trace.enable();
  trace.add_span(make_span(0, 0.0, 1.0));
  std::ostringstream oss;
  trace.write_csv(oss);
  EXPECT_NE(oss.str().find("task,0,0,k,0,1"), std::string::npos) << oss.str();
}

TEST(Trace, SpanKindNames) {
  EXPECT_STREQ(to_string(SpanKind::kTask), "task");
  EXPECT_STREQ(to_string(SpanKind::kTransfer), "transfer");
  EXPECT_STREQ(to_string(SpanKind::kIdle), "idle");
  EXPECT_STREQ(to_string(SpanKind::kOverhead), "overhead");
}

}  // namespace
}  // namespace greencap::sim
