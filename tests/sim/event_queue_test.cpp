#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace greencap::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::infinity());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::seconds(3.0), [&] { order.push_back(3); });
  q.schedule(SimTime::seconds(1.0), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2.0), [&] { order.push_back(2); });
  while (!q.empty()) {
    auto [when, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.schedule(SimTime::seconds(1.0), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.pop().second();
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueue, PopReturnsScheduledTime) {
  EventQueue q;
  q.schedule(SimTime::seconds(4.5), [] {});
  EXPECT_EQ(q.next_time(), SimTime::seconds(4.5));
  auto [when, cb] = q.pop();
  EXPECT_EQ(when, SimTime::seconds(4.5));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsFalse) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1.0), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const EventId early = q.schedule(SimTime::seconds(1.0), [] {});
  q.schedule(SimTime::seconds(2.0), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2.0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::seconds(1.0), [] {});
  q.schedule(SimTime::seconds(2.0), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, InterleavedScheduleAndPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::seconds(1.0), [&] { order.push_back(1); });
  q.pop().second();
  q.schedule(SimTime::seconds(0.5), [&] { order.push_back(2); });
  q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace greencap::sim
