#include "sim/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace greencap::sim {
namespace {

/// Captures everything the singleton logger emits for the test's lifetime
/// and restores the default sink/level afterwards.
class CaptureSink {
 public:
  CaptureSink() {
    saved_level_ = Logger::instance().level();
    Logger::instance().set_level(LogLevel::kDebug);
    Logger::instance().set_sink(
        [this](LogLevel level, const std::string& msg) { lines_.emplace_back(level, msg); });
  }
  ~CaptureSink() {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_level(saved_level_);
  }

  [[nodiscard]] const std::vector<std::pair<LogLevel, std::string>>& lines() const {
    return lines_;
  }

 private:
  LogLevel saved_level_ = LogLevel::kWarn;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Logger, FormatsShortMessages) {
  CaptureSink capture;
  Logger::instance().logf(LogLevel::kInfo, "gpu%d capped at %.0f W", 2, 216.0);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].first, LogLevel::kInfo);
  EXPECT_EQ(capture.lines()[0].second, "gpu2 capped at 216 W");
}

TEST(Logger, LongMessagesAreNotTruncated) {
  CaptureSink capture;
  // Well past the 512-byte stack buffer.
  const std::string payload(2000, 'x');
  Logger::instance().logf(LogLevel::kWarn, "head %s tail", payload.c_str());
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& msg = capture.lines()[0].second;
  EXPECT_EQ(msg.size(), payload.size() + 10);
  EXPECT_EQ(msg.substr(0, 5), "head ");
  EXPECT_EQ(msg.substr(msg.size() - 5), " tail");
  EXPECT_EQ(msg.find('x'), 5u);
}

TEST(Logger, MessageExactlyAtBufferBoundary) {
  CaptureSink capture;
  // 511 chars fits (with NUL) in the 512 buffer; 512 chars does not.
  for (const std::size_t len : {511u, 512u, 513u}) {
    const std::string payload(len, 'y');
    Logger::instance().logf(LogLevel::kError, "%s", payload.c_str());
    EXPECT_EQ(capture.lines().back().second, payload) << "len=" << len;
  }
}

TEST(Logger, LevelFiltersBeforeFormatting) {
  CaptureSink capture;
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().logf(LogLevel::kDebug, "hidden %d", 1);
  Logger::instance().logf(LogLevel::kError, "shown %d", 2);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "shown 2");
}

}  // namespace
}  // namespace greencap::sim
