#include "sim/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace greencap::sim {
namespace {

/// A Logger wired to capture everything it emits. Loggers are plain
/// values — two fixtures never share state, unlike the old singleton.
class CapturingLogger {
 public:
  CapturingLogger() {
    logger_.set_level(LogLevel::kDebug);
    logger_.set_sink(
        [this](LogLevel level, const std::string& msg) { lines_.emplace_back(level, msg); });
  }

  [[nodiscard]] Logger& logger() { return logger_; }
  [[nodiscard]] const std::vector<std::pair<LogLevel, std::string>>& lines() const {
    return lines_;
  }

 private:
  Logger logger_;
  std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Logger, FormatsShortMessages) {
  CapturingLogger capture;
  capture.logger().logf(LogLevel::kInfo, "gpu%d capped at %.0f W", 2, 216.0);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].first, LogLevel::kInfo);
  EXPECT_EQ(capture.lines()[0].second, "gpu2 capped at 216 W");
}

TEST(Logger, LongMessagesAreNotTruncated) {
  CapturingLogger capture;
  // Well past the 512-byte stack buffer.
  const std::string payload(2000, 'x');
  capture.logger().logf(LogLevel::kWarn, "head %s tail", payload.c_str());
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& msg = capture.lines()[0].second;
  EXPECT_EQ(msg.size(), payload.size() + 10);
  EXPECT_EQ(msg.substr(0, 5), "head ");
  EXPECT_EQ(msg.substr(msg.size() - 5), " tail");
  EXPECT_EQ(msg.find('x'), 5u);
}

TEST(Logger, MessageExactlyAtBufferBoundary) {
  CapturingLogger capture;
  // 511 chars fits (with NUL) in the 512 buffer; 512 chars does not.
  for (const std::size_t len : {511u, 512u, 513u}) {
    const std::string payload(len, 'y');
    capture.logger().logf(LogLevel::kError, "%s", payload.c_str());
    EXPECT_EQ(capture.lines().back().second, payload) << "len=" << len;
  }
}

TEST(Logger, LevelFiltersBeforeFormatting) {
  CapturingLogger capture;
  capture.logger().set_level(LogLevel::kWarn);
  capture.logger().logf(LogLevel::kDebug, "hidden %d", 1);
  capture.logger().logf(LogLevel::kError, "shown %d", 2);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "shown 2");
}

TEST(Logger, IndependentInstancesDoNotShareState) {
  CapturingLogger a;
  CapturingLogger b;
  b.logger().set_level(LogLevel::kError);
  a.logger().logf(LogLevel::kInfo, "only in a");
  b.logger().logf(LogLevel::kInfo, "filtered in b");
  EXPECT_EQ(a.lines().size(), 1u);
  EXPECT_TRUE(b.lines().empty());
}

TEST(Logger, ParsesLevelNames) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(parse_log_level("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("loud", &level));
  EXPECT_EQ(level, LogLevel::kOff);  // untouched on failure
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
}

}  // namespace
}  // namespace greencap::sim
