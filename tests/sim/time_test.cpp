#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace greencap::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_DOUBLE_EQ(SimTime{}.sec(), 0.0);
  EXPECT_EQ(SimTime{}, SimTime::zero());
}

TEST(SimTime, UnitConstructorsAgree) {
  EXPECT_DOUBLE_EQ(SimTime::seconds(1.5).sec(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::millis(1500.0).sec(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::micros(1.5e6).sec(), 1.5);
}

TEST(SimTime, UnitAccessors) {
  const SimTime t = SimTime::seconds(0.25);
  EXPECT_DOUBLE_EQ(t.ms(), 250.0);
  EXPECT_DOUBLE_EQ(t.us(), 250000.0);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::seconds(1.0), SimTime::seconds(2.0));
  EXPECT_GT(SimTime::seconds(3.0), SimTime::seconds(2.0));
  EXPECT_LE(SimTime::seconds(2.0), SimTime::seconds(2.0));
  EXPECT_EQ(SimTime::seconds(2.0), SimTime::seconds(2.0));
}

TEST(SimTime, Arithmetic) {
  const SimTime a = SimTime::seconds(2.0);
  const SimTime b = SimTime::seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).sec(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).sec(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).sec(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).sec(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).sec(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = SimTime::seconds(1.0);
  t += SimTime::seconds(2.0);
  EXPECT_DOUBLE_EQ(t.sec(), 3.0);
  t -= SimTime::seconds(0.5);
  EXPECT_DOUBLE_EQ(t.sec(), 2.5);
}

TEST(SimTime, Infinity) {
  const SimTime inf = SimTime::infinity();
  EXPECT_FALSE(inf.is_finite());
  EXPECT_TRUE(SimTime::zero().is_finite());
  EXPECT_LT(SimTime::seconds(1e18), inf);
  EXPECT_EQ(inf.to_string(), "+inf");
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_NE(SimTime::micros(5.0).to_string().find("us"), std::string::npos);
  EXPECT_NE(SimTime::millis(5.0).to_string().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::seconds(5.0).to_string().find("s"), std::string::npos);
}

}  // namespace
}  // namespace greencap::sim
