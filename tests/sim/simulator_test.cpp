#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace greencap::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunAdvancesClockToLastEvent) {
  Simulator sim;
  sim.at(SimTime::seconds(5.0), [] {});
  sim.at(SimTime::seconds(2.0), [] {});
  EXPECT_EQ(sim.run(), SimTime::seconds(5.0));
  EXPECT_EQ(sim.now(), SimTime::seconds(5.0));
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  SimTime observed;
  sim.at(SimTime::seconds(1.0), [&] {
    sim.after(SimTime::seconds(2.0), [&] { observed = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(observed, SimTime::seconds(3.0));
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.at(SimTime::seconds(2.0), [] {});
  sim.run();
  EXPECT_THROW(sim.at(SimTime::seconds(1.0), [] {}), TimeTravelError);
  EXPECT_THROW(sim.after(SimTime::seconds(-0.5), [] {}), TimeTravelError);
}

TEST(Simulator, SchedulingAtNowIsAllowed) {
  Simulator sim;
  bool fired = false;
  sim.at(SimTime::seconds(1.0), [&] {
    sim.at(sim.now(), [&] { fired = true; });
  });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCascade) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      sim.after(SimTime::seconds(1.0), recurse);
    }
  };
  sim.after(SimTime::seconds(1.0), recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), SimTime::seconds(10.0));
  EXPECT_EQ(sim.executed_events(), 10u);
}

TEST(Simulator, StepExecutesExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.at(SimTime::seconds(1.0), [&] { ++count; });
  sim.at(SimTime::seconds(2.0), [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), SimTime::seconds(1.0));
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  sim.at(SimTime::seconds(1.0), [&] { ++count; });
  sim.at(SimTime::seconds(2.0), [&] { ++count; });
  sim.at(SimTime::seconds(5.0), [&] { ++count; });
  sim.run_until(SimTime::seconds(2.0));
  EXPECT_EQ(count, 2);  // events at exactly the deadline fire
  EXPECT_EQ(sim.now(), SimTime::seconds(2.0));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenEventsRemain) {
  Simulator sim;
  sim.at(SimTime::seconds(10.0), [] {});
  sim.run_until(SimTime::seconds(4.0));
  EXPECT_EQ(sim.now(), SimTime::seconds(4.0));
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(SimTime::seconds(1.0), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DeterministicOrderAtSameInstant) {
  std::vector<int> first_run;
  std::vector<int> second_run;
  for (auto* out : {&first_run, &second_run}) {
    Simulator sim;
    for (int i = 0; i < 8; ++i) {
      sim.at(SimTime::seconds(1.0), [out, i] { out->push_back(i); });
    }
    sim.run();
  }
  EXPECT_EQ(first_run, second_run);
}

}  // namespace
}  // namespace greencap::sim
