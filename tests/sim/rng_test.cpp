#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace greencap::sim {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Xoshiro256 a{123};
  Xoshiro256 b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a{1};
  Xoshiro256 b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng{11};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng{13};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256 rng{17};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalMoments) {
  Xoshiro256 rng{19};
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, JumpCreatesIndependentStream) {
  Xoshiro256 a{42};
  Xoshiro256 b{42};
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a() == b());
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitMixExpandsDifferently) {
  std::uint64_t s = 1;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace greencap::sim
