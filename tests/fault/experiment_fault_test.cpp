// End-to-end resilience through the experiment driver and the linear
// algebra layer: the ISSUE's acceptance scenarios. A GPU dropping mid-POTRF
// must still produce a correct factorization, an inert fault plan must not
// change a single output bit, and a fixed (seed, spec) pair must replay to
// identical observability artifacts.
#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hw/presets.hpp"
#include "la/operations.hpp"
#include "la/verify.hpp"

namespace greencap::core {
namespace {

ExperimentConfig small_gemm() {
  ExperimentConfig cfg;
  cfg.platform = "32-AMD-4-A100";
  cfg.op = Operation::kGemm;
  cfg.precision = hw::Precision::kDouble;
  cfg.n = 74880;
  cfg.nb = 5760;
  cfg.gpu_config = power::GpuConfig::parse("HHHH");
  return cfg;
}

// -- acceptance: dropout mid-POTRF -------------------------------------------

struct PotrfOutcome {
  double makespan_s = 0.0;
  std::vector<double> factor;
  fault::DegradationReport degradation;
  fault::FaultInjector::Counts counts;
};

constexpr std::int64_t kPotrfN = 128;
constexpr int kPotrfNb = 16;

PotrfOutcome run_potrf(const std::string& faults) {
  hw::Platform platform{hw::presets::platform_24_intel_2_v100()};
  sim::Simulator sim;
  fault::FaultInjector injector{fault::FaultPlan::parse(faults), 7};
  PotrfOutcome out;
  rt::RuntimeOptions opts;
  opts.execute_kernels = true;
  opts.faults = &injector;
  opts.degradation = &out.degradation;
  rt::Runtime runtime{platform, sim, opts};
  la::Codelets<double> cl;
  la::TileMatrix<double> a{kPotrfN, kPotrfNb};
  sim::Xoshiro256 rng{11};
  a.make_spd(rng);
  a.register_with(runtime);
  injector.arm(sim);
  la::submit_potrf<double>(runtime, cl, a);
  runtime.wait_all();
  out.makespan_s = runtime.stats().makespan.sec();
  out.factor = a.to_dense();
  out.counts = injector.counts();
  return out;
}

TEST(ExperimentFault, GpuDropoutMidPotrfStillFactorizesCorrectly) {
  // Measure a clean makespan first so the dropout can be pinned mid-run.
  const PotrfOutcome clean = run_potrf("dropout@gpu1:t=1e6");  // inert
  ASSERT_GT(clean.makespan_s, 0.0);
  EXPECT_EQ(clean.counts.dropouts, 0u);
  EXPECT_TRUE(clean.degradation.empty());

  std::ostringstream spec;
  spec << "dropout@gpu1:t=" << clean.makespan_s / 2;
  const PotrfOutcome faulty = run_potrf(spec.str());
  ASSERT_EQ(faulty.counts.dropouts, 1u) << "dropout must land mid-run";
  ASSERT_FALSE(faulty.degradation.empty());
  EXPECT_EQ(faulty.degradation.events()[0].component, "rt");

  la::TileMatrix<double> ref{kPotrfN, kPotrfNb};
  sim::Xoshiro256 rng{11};
  ref.make_spd(rng);
  std::vector<double> want = ref.to_dense();
  la::reference_potrf<double>(kPotrfN, want);
  EXPECT_LT(la::max_rel_error_lower<double>(kPotrfN, faulty.factor, want), 1e-10);
}

// -- inert plans change nothing ----------------------------------------------

TEST(ExperimentFault, InertFaultPlanLeavesResultsIdentical) {
  const ExperimentResult base = run_experiment(small_gemm());
  ExperimentConfig cfg = small_gemm();
  // A plan whose only event can never fire (capfail window at t=900 on the
  // raw clock), plus changed resilience knobs that stay dormant without a
  // live fault.
  cfg.resilience.faults = "capfail@gpu0:t=900,until=901,perm=1";
  cfg.resilience.fault_seed = 1234;
  cfg.resilience.max_cap_retries = 7;
  const ExperimentResult inert = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(inert.time_s, base.time_s);
  EXPECT_DOUBLE_EQ(inert.gflops, base.gflops);
  EXPECT_DOUBLE_EQ(inert.total_energy_j, base.total_energy_j);
  for (std::size_t g = 0; g < base.energy.gpu_joules.size(); ++g) {
    EXPECT_DOUBLE_EQ(inert.energy.gpu_joules[g], base.energy.gpu_joules[g]) << "gpu" << g;
  }
  EXPECT_EQ(inert.fault_counts.cap_write_failures, 0u);
  EXPECT_TRUE(inert.degradation.empty());
  EXPECT_EQ(inert.energy_counter_resets, 0);
}

// -- deterministic replay -----------------------------------------------------

TEST(ExperimentFault, SameSeedAndSpecReplayToIdenticalArtifacts) {
  const auto run = [] {
    ExperimentConfig cfg = small_gemm();
    cfg.resilience.faults =
        "straggler@gpu0:t=0.5,until=2,factor=3;energyreset@gpu1:t=1;dropout@gpu3:t=1.5";
    cfg.resilience.fault_seed = 99;
    cfg.resilience.reconcile_ms = 50.0;
    cfg.resilience.degrade = true;
    cfg.obs.metrics = true;
    cfg.obs.decision_log = true;
    return run_experiment(cfg);
  };
  const ExperimentResult a = run();
  const ExperimentResult b = run();

  ASSERT_EQ(a.fault_counts.dropouts, 1u) << "plan must actually fire mid-run";
  ASSERT_EQ(a.fault_counts.energy_resets, 1u);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  ASSERT_NE(a.observability, nullptr);
  ASSERT_NE(b.observability, nullptr);

  std::ostringstream ma, mb, da, db;
  a.observability->metrics.write_json(ma);
  b.observability->metrics.write_json(mb);
  EXPECT_EQ(ma.str(), mb.str());
  a.observability->decisions.write_json(da);
  b.observability->decisions.write_json(db);
  EXPECT_EQ(da.str(), db.str());
}

// -- degradation surfaces in the result ---------------------------------------

TEST(ExperimentFault, UnrecoverableCapWriteDegradesOrFailsTheRun) {
  ExperimentConfig cfg = small_gemm();
  cfg.gpu_config = power::GpuConfig::parse("LLLL");
  cfg.resilience.faults = "capfail@gpu2:perm=1";

  // Without degradation the run must refuse to proceed under a silently
  // wrong configuration: rollback and throw.
  EXPECT_THROW(run_experiment(cfg), std::runtime_error);

  cfg.resilience.degrade = true;
  const ExperimentResult r = run_experiment(cfg);
  EXPECT_GT(r.fault_counts.cap_write_failures, 0u);
  ASSERT_FALSE(r.degradation.empty());
  EXPECT_EQ(r.degradation.events()[0].component, "power");
  EXPECT_EQ(r.degradation.events()[0].detail, "gpu2");
  // gpu2 ran hot (H instead of L): it must have drawn more energy than a
  // capped sibling.
  EXPECT_GT(r.energy.gpu_joules[2], r.energy.gpu_joules[1]);
}

// -- energy-counter reset reconstruction --------------------------------------

TEST(ExperimentFault, EnergyCounterResetIsReconstructed) {
  const ExperimentResult base = run_experiment(small_gemm());
  ExperimentConfig cfg = small_gemm();
  std::ostringstream spec;
  spec << "energyreset@gpu0:t=" << base.time_s / 2;
  cfg.resilience.faults = spec.str();
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_EQ(r.fault_counts.energy_resets, 1u);
  EXPECT_EQ(r.energy_counter_resets, 1);
  // The monotonic tracker folds the reset away: the reported energy must
  // match the clean run to floating-point noise, not lose half the run.
  EXPECT_NEAR(r.energy.gpu_joules[0], base.energy.gpu_joules[0],
              base.energy.gpu_joules[0] * 1e-9);
  EXPECT_NEAR(r.total_energy_j, base.total_energy_j, base.total_energy_j * 1e-9);
}

TEST(ExperimentFault, DescribeMentionsFaultSpec) {
  ExperimentConfig cfg = small_gemm();
  cfg.resilience.faults = "dropout@gpu1:t=2";
  EXPECT_NE(cfg.describe().find("faults=dropout@gpu1:t=2"), std::string::npos);
}

}  // namespace
}  // namespace greencap::core
