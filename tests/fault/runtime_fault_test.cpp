// Runtime resilience: worker quarantine on GPU dropout, requeue of
// in-flight and queued work, coherence repair for copies stranded on the
// dead device, and straggler slowdowns — all with numerical correctness as
// the oracle (tasks really execute on the host).
#include <gtest/gtest.h>

#include <vector>

#include "fault/degradation.hpp"
#include "fault/injector.hpp"
#include "hw/presets.hpp"
#include "rt/runtime.hpp"

namespace greencap::rt {
namespace {

/// Chain codelet: x -> 3*x + 1 on its single RW cell. A chain of N such
/// tasks has one deterministic answer; a lost or doubly-executed task
/// after a dropout/requeue changes it.
Codelet chain_codelet(WhereMask where = kWhereAny) {
  Codelet c;
  c.name = "chain";
  c.klass = hw::KernelClass::kGeneric;
  c.where = where;
  c.cpu_func = [](Task& task) {
    auto* cell = static_cast<std::int64_t*>(task.accesses()[0].handle->host_ptr());
    *cell = *cell * 3 + 1;
  };
  return c;
}

/// Heavy enough that a chain of tasks spans whole virtual seconds, so
/// faults scheduled at fractions of a second land mid-run.
constexpr double kFlops = 1e12;

struct Harness {
  hw::Platform platform{hw::presets::platform_32_amd_4_a100()};
  sim::Simulator sim;
  fault::FaultInjector injector;
  fault::DegradationReport degradation;
  Runtime runtime;

  explicit Harness(const std::string& faults, std::uint64_t seed = 42)
      : injector{fault::FaultPlan::parse(faults), seed}, runtime{platform, sim, [&] {
          RuntimeOptions opts;
          opts.execute_kernels = true;
          opts.seed = seed;
          opts.faults = &injector;
          opts.degradation = &degradation;
          return opts;
        }()} {}

  void submit_chain(const Codelet& codelet, DataHandle* handle, int links) {
    for (int i = 0; i < links; ++i) {
      TaskDesc desc;
      desc.codelet = &codelet;
      desc.work = hw::KernelWork{hw::KernelClass::kGeneric, hw::Precision::kDouble, kFlops, 1024};
      desc.accesses.push_back({handle, AccessMode::kReadWrite});
      runtime.submit(std::move(desc));
    }
  }
};

TEST(RuntimeFault, DropoutMidRunPreservesChainResult) {
  constexpr int kChains = 8;
  constexpr int kLinks = 30;
  Harness h{"dropout@gpu1:t=0.05"};
  const Codelet chain = chain_codelet();

  std::vector<std::int64_t> cells(kChains, 1);
  std::vector<DataHandle*> handles;
  for (auto& cell : cells) {
    handles.push_back(h.runtime.register_data(sizeof cell, &cell));
  }
  h.injector.arm(h.sim);
  for (int link = 0; link < kLinks; ++link) {
    for (int c = 0; c < kChains; ++c) {
      TaskDesc desc;
      desc.codelet = &chain;
      desc.work = hw::KernelWork{hw::KernelClass::kGeneric, hw::Precision::kDouble, kFlops, 1024};
      desc.accesses.push_back({handles[c], AccessMode::kReadWrite});
      h.runtime.submit(std::move(desc));
    }
  }
  h.runtime.wait_all();

  ASSERT_EQ(h.injector.counts().dropouts, 1u) << "fault must land mid-run";
  std::int64_t expected = 1;
  for (int link = 0; link < kLinks; ++link) expected = expected * 3 + 1;
  for (int c = 0; c < kChains; ++c) {
    EXPECT_EQ(cells[c], expected) << "chain " << c;
  }
  EXPECT_EQ(h.runtime.stats().tasks_completed, static_cast<std::uint64_t>(kChains * kLinks));

  // Exactly one worker (gpu1's) must be quarantined, with zero live state.
  std::size_t quarantined = 0;
  for (std::size_t w = 0; w < h.runtime.worker_count(); ++w) {
    const Worker& worker = h.runtime.worker(w);
    if (worker.quarantined) {
      ++quarantined;
      EXPECT_EQ(worker.arch(), WorkerArch::kCuda);
      EXPECT_EQ(worker.inflight, nullptr);
      EXPECT_TRUE(worker.queue.empty());
      EXPECT_TRUE(worker.gpu()->failed());
    }
  }
  EXPECT_EQ(quarantined, 1u);
  ASSERT_FALSE(h.degradation.empty());
  EXPECT_EQ(h.degradation.events()[0].component, "rt");
  EXPECT_EQ(h.degradation.events()[0].to, "quarantined");
}

TEST(RuntimeFault, DropoutLeavesNoCopiesOnDeadNode) {
  Harness h{"dropout@gpu0:t=0.05"};
  const Codelet chain = chain_codelet();
  std::int64_t cell = 1;
  DataHandle* handle = h.runtime.register_data(sizeof cell, &cell);
  h.injector.arm(h.sim);
  h.submit_chain(chain, handle, 20);
  h.runtime.wait_all();

  ASSERT_EQ(h.injector.counts().dropouts, 1u);
  MemoryNode dead_node = kHostNode;
  for (std::size_t w = 0; w < h.runtime.worker_count(); ++w) {
    if (h.runtime.worker(w).quarantined) dead_node = h.runtime.worker(w).node();
  }
  ASSERT_NE(dead_node, kHostNode);
  EXPECT_FALSE(handle->valid_on(dead_node));
  EXPECT_GE(handle->copy_count(), 1u);
}

TEST(RuntimeFault, AllGpusDroppedStillCompletesOnCpus) {
  Harness h{"dropout@gpu0:t=0;dropout@gpu1:t=0;dropout@gpu2:t=0;dropout@gpu3:t=0"};
  const Codelet chain = chain_codelet();
  std::int64_t cell = 1;
  DataHandle* handle = h.runtime.register_data(sizeof cell, &cell);
  h.injector.arm(h.sim);
  h.sim.run();  // fire all four dropouts before any work is submitted
  h.submit_chain(chain, handle, 10);
  h.runtime.wait_all();

  const RuntimeStats stats = h.runtime.stats();
  EXPECT_EQ(stats.tasks_completed, 10u);
  for (const auto& w : stats.per_worker) {
    if (w.arch == WorkerArch::kCuda) {
      EXPECT_EQ(w.tasks, 0u) << "quarantined GPU worker executed a task";
    }
  }
}

TEST(RuntimeFault, StragglerStretchesMakespanDeterministically) {
  const auto run = [](const std::string& faults) {
    Harness h{faults};
    const Codelet chain = chain_codelet(kWhereCuda);  // stragglers hit CUDA only
    std::int64_t cell = 1;
    DataHandle* handle = h.runtime.register_data(sizeof cell, &cell);
    h.injector.arm(h.sim);
    h.submit_chain(chain, handle, 20);
    h.runtime.wait_all();
    return h.runtime.stats().makespan.sec();
  };
  // An inert window (never reached) leaves the makespan untouched.
  const double clean = run("straggler@any:t=1e6,factor=8");
  const double slow = run("straggler@any:t=0,factor=8");
  EXPECT_GT(slow, clean * 1.5);
  EXPECT_DOUBLE_EQ(run("straggler@any:t=0,factor=8"), slow);  // replayable
}

TEST(RuntimeFault, InvalidateGpuHistoryDropsGpuWorkerEntries) {
  Harness h{"dropout@gpu3:t=1e6"};  // inert plan; only the runtime is needed
  const Codelet chain = chain_codelet(kWhereCuda);
  std::int64_t cell = 1;
  DataHandle* handle = h.runtime.register_data(sizeof cell, &cell);
  h.submit_chain(chain, handle, 8);
  h.runtime.wait_all();

  // CUDA-only tasks fed only GPU workers' histories; invalidating every
  // GPU must therefore empty the model.
  HistoryPerfModel& model = h.runtime.perf_model();
  ASSERT_GT(model.entry_count(), 0u);
  for (std::size_t g = 0; g < h.platform.gpu_count(); ++g) {
    h.runtime.invalidate_gpu_history(g);
  }
  EXPECT_EQ(model.entry_count(), 0u);
}

}  // namespace
}  // namespace greencap::rt
