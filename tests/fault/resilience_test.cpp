// PowerManager resilience: bounded retry with virtual-time backoff,
// all-or-nothing rollback, graceful degradation and cap reconciliation,
// exercised against injected NVML failures.
#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.hpp"
#include "hw/presets.hpp"
#include "obs/metrics.hpp"
#include "power/manager.hpp"

namespace greencap::power {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  ResilienceTest() : platform_{hw::presets::platform_32_amd_4_a100()}, mgr_{platform_, sim_} {}

  hw::Platform platform_;
  sim::Simulator sim_;
  PowerManager mgr_;
};

TEST_F(ResilienceTest, RetryWithBackoffSurvivesTransientFailures) {
  fault::FaultInjector inj{fault::FaultPlan::parse("capfail@gpu0:count=2"), 1};
  mgr_.attach_faults(inj);
  obs::MetricsRegistry metrics;
  mgr_.set_metrics(&metrics);
  PowerResilience res;
  res.max_retries = 3;
  mgr_.set_resilience(res);

  const sim::SimTime t0 = sim_.now();
  mgr_.apply(GpuConfig::parse("LLLL"));
  EXPECT_DOUBLE_EQ(platform_.gpu(0).power_cap(), 100.0);
  // Two failed attempts -> two backoffs (1 ms, then 2 ms) in virtual time.
  EXPECT_NEAR((sim_.now() - t0).sec(), 0.003, 1e-9);
  EXPECT_EQ(metrics.counter("power.cap_write_retries").value(), 2u);
  EXPECT_EQ(inj.counts().cap_write_failures, 2u);
}

TEST_F(ResilienceTest, ExhaustedRetriesRollBackEarlierGpus) {
  fault::FaultInjector inj{fault::FaultPlan::parse("capfail@gpu2:perm=1"), 1};
  mgr_.attach_faults(inj);
  PowerResilience res;
  res.max_retries = 1;
  mgr_.set_resilience(res);

  EXPECT_THROW(mgr_.apply(GpuConfig::parse("LLLL")), std::runtime_error);
  // gpu0/gpu1 were written to 100 W before gpu2 failed; the rollback must
  // have restored them, and gpu3 must never have been touched.
  for (std::size_t g = 0; g < platform_.gpu_count(); ++g) {
    EXPECT_DOUBLE_EQ(platform_.gpu(g).power_cap(), 400.0) << "gpu" << g;
  }
}

TEST_F(ResilienceTest, DegradationFallsBackToDefaultLimit) {
  fault::FaultInjector inj{fault::FaultPlan::parse("capfail@gpu2:count=1"), 1};
  mgr_.attach_faults(inj);
  PowerResilience res;
  res.max_retries = 0;
  res.allow_degradation = true;
  mgr_.set_resilience(res);
  fault::DegradationReport report;
  mgr_.set_degradation(&report);

  mgr_.apply(GpuConfig::parse("LLLL"));  // no throw
  EXPECT_DOUBLE_EQ(platform_.gpu(0).power_cap(), 100.0);
  EXPECT_DOUBLE_EQ(platform_.gpu(1).power_cap(), 100.0);
  EXPECT_DOUBLE_EQ(platform_.gpu(2).power_cap(), 400.0);  // degraded L -> H
  EXPECT_DOUBLE_EQ(platform_.gpu(3).power_cap(), 100.0);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.events()[0].component, "power");
  EXPECT_EQ(report.events()[0].detail, "gpu2");
}

TEST_F(ResilienceTest, DroppedDeviceFailsFastAndRollsBack) {
  fault::FaultInjector inj{fault::FaultPlan::parse("dropout@gpu1:t=0"), 1};
  mgr_.attach_faults(inj);
  inj.arm(sim_);
  sim_.run();
  ASSERT_TRUE(inj.dropped(1));

  const sim::SimTime t0 = sim_.now();
  EXPECT_THROW(mgr_.apply(GpuConfig::parse("LLLL")), std::runtime_error);
  EXPECT_DOUBLE_EQ(platform_.gpu(0).power_cap(), 400.0);  // rolled back
  // kNotFound is not retryable: no backoff time may have been burned.
  EXPECT_DOUBLE_EQ((sim_.now() - t0).sec(), 0.0);
}

TEST_F(ResilienceTest, ReconciliationReassertsDriftedCap) {
  fault::FaultInjector inj{fault::FaultPlan::parse("drift@gpu1:t=0.05,watts=300"), 1};
  mgr_.attach_faults(inj);
  fault::DegradationReport report;
  mgr_.set_degradation(&report);
  mgr_.apply(GpuConfig::parse("LLLL"));

  std::vector<std::size_t> reasserted;
  mgr_.start_reconciliation(sim::SimTime::millis(10),
                            [&](std::size_t g) { reasserted.push_back(g); });
  inj.arm(sim_);
  sim_.run_until(sim::SimTime::seconds(0.2));
  mgr_.stop_reconciliation();

  EXPECT_DOUBLE_EQ(platform_.gpu(1).power_cap(), 100.0);  // back at L
  ASSERT_EQ(reasserted.size(), 1u);
  EXPECT_EQ(reasserted[0], 1u);
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report.events()[0].detail, "gpu1");
  EXPECT_NE(report.events()[0].reason.find("re-asserted"), std::string::npos);
}

TEST_F(ResilienceTest, ReconciliationSkipsUnmanagedAndDroppedGpus) {
  fault::FaultInjector inj{fault::FaultPlan::parse("dropout@gpu0:t=0.01"), 1};
  mgr_.attach_faults(inj);
  obs::MetricsRegistry metrics;
  mgr_.set_metrics(&metrics);
  mgr_.apply(GpuConfig::parse("LLLL"));
  mgr_.start_reconciliation(sim::SimTime::millis(10));
  inj.arm(sim_);
  sim_.run_until(sim::SimTime::seconds(0.1));
  mgr_.stop_reconciliation();
  // 10 periods x 4 GPUs, minus the dropped gpu0 after t=0.01: strictly
  // fewer checks than the full grid, and nothing re-asserted.
  EXPECT_LT(metrics.counter("power.reconcile_checks").value(), 40u);
  EXPECT_EQ(metrics.counter("power.reconcile_reasserts").value(), 0u);
}

TEST_F(ResilienceTest, StartReconciliationValidatesPeriod) {
  EXPECT_THROW(mgr_.start_reconciliation(sim::SimTime::zero()), std::invalid_argument);
  EXPECT_FALSE(mgr_.reconciling());
}

TEST_F(ResilienceTest, ResetAuditsFailedRestores) {
  fault::FaultInjector inj{fault::FaultPlan::parse("capfail@any:perm=1"), 1};
  mgr_.attach_faults(inj);
  obs::MetricsRegistry metrics;
  mgr_.set_metrics(&metrics);
  fault::DegradationReport report;
  mgr_.set_degradation(&report);
  mgr_.reset();
  EXPECT_EQ(metrics.counter("power.reset_failures").value(), platform_.gpu_count());
  EXPECT_EQ(report.size(), platform_.gpu_count());
}

}  // namespace
}  // namespace greencap::power
