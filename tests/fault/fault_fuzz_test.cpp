// Fault-schedule fuzzer: random DAGs x random fault plans.
//
// Extends the sequential-consistency oracle of tests/rt/fuzz_test.cpp with
// randomly generated straggler and dropout schedules (the fault kinds the
// runtime itself must absorb). Whatever the plan does — quarantine workers
// mid-task, stretch kernels, evict queues — three invariants must hold:
//
//   1. numerical correctness: the parallel execution still matches the
//      sequential replay of the submission order,
//   2. liveness: wait_all() returns with every submitted task completed,
//   3. determinism: the same (DAG seed, plan, fault seed) replays to the
//      identical makespan and cell values, and the energy accounting stays
//      finite and non-negative.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "fault/degradation.hpp"
#include "fault/injector.hpp"
#include "hw/presets.hpp"
#include "rt/runtime.hpp"
#include "sim/rng.hpp"

namespace greencap::rt {
namespace {

struct FaultFuzzCase {
  const char* scheduler;
  std::uint64_t seed;
  int handles;
  int tasks;
};

struct ScriptTask {
  std::vector<std::pair<int, AccessMode>> accesses;
  double flops = 0.0;
  std::int64_t priority = 0;
};

/// Random straggler/dropout schedule. Task durations are 0.01-0.11 s, so
/// activation times up to ~1 s land inside the DAG's makespan.
std::string random_plan(sim::Xoshiro256& rng, std::size_t gpu_count) {
  std::ostringstream spec;
  const int events = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < events; ++e) {
    if (e > 0) spec << ';';
    const std::uint64_t gpu = rng.below(gpu_count);
    if (rng.below(2) == 0) {
      spec << "dropout@gpu" << gpu << ":t=" << 0.05 + rng.uniform();
    } else {
      const double t = 0.5 * rng.uniform();
      spec << "straggler@gpu" << gpu << ":t=" << t << ",until=" << t + 0.5 + rng.uniform()
           << ",factor=" << 1.5 + 3.0 * rng.uniform();
    }
  }
  return spec.str();
}

struct RunResult {
  std::vector<std::int64_t> cells;
  double makespan_s = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t quarantined = 0;
  double energy_j = 0.0;
};

RunResult run_with_faults(const FaultFuzzCase& fc, const std::vector<ScriptTask>& script,
                          const std::string& plan, std::uint64_t fault_seed) {
  const Codelet folder = [] {
    Codelet c;
    c.name = "folder";
    c.klass = hw::KernelClass::kGeneric;
    c.where = kWhereAny;
    c.cpu_func = [](Task& task) {
      std::int64_t acc = 0;
      for (const TaskAccess& a : task.accesses()) {
        if (a.mode != AccessMode::kWrite) {
          acc = acc * 131 + *static_cast<std::int64_t*>(a.handle->host_ptr());
        }
      }
      for (const TaskAccess& a : task.accesses()) {
        if (is_write(a.mode)) {
          *static_cast<std::int64_t*>(a.handle->host_ptr()) = acc * 31 + task.id();
        }
      }
    };
    return c;
  }();

  hw::Platform platform{hw::presets::platform_32_amd_4_a100()};
  sim::Simulator sim;
  fault::FaultInjector injector{fault::FaultPlan::parse(plan), fault_seed};
  fault::DegradationReport degradation;
  RuntimeOptions opts;
  opts.scheduler = fc.scheduler;
  opts.execute_kernels = true;
  opts.exec_noise_rel = 0.10;  // jitter the timing to vary interleavings
  opts.seed = fc.seed;
  opts.faults = &injector;
  opts.degradation = &degradation;
  Runtime runtime{platform, sim, opts};

  RunResult out;
  out.cells.resize(static_cast<std::size_t>(fc.handles));
  std::vector<DataHandle*> handles(static_cast<std::size_t>(fc.handles));
  for (int h = 0; h < fc.handles; ++h) {
    out.cells[static_cast<std::size_t>(h)] = h + 1;
    handles[static_cast<std::size_t>(h)] =
        runtime.register_data(sizeof(std::int64_t), &out.cells[static_cast<std::size_t>(h)]);
  }
  injector.arm(sim);
  for (const ScriptTask& st : script) {
    TaskDesc desc;
    desc.codelet = &folder;
    desc.work =
        hw::KernelWork{hw::KernelClass::kGeneric, hw::Precision::kDouble, st.flops, 1024};
    desc.priority = st.priority;
    for (const auto& [h, mode] : st.accesses) {
      desc.accesses.push_back({handles[static_cast<std::size_t>(h)], mode});
    }
    runtime.submit(std::move(desc));
  }
  runtime.wait_all();

  const RuntimeStats stats = runtime.stats();
  out.makespan_s = stats.makespan.sec();
  out.completed = stats.tasks_completed;
  for (std::size_t w = 0; w < runtime.worker_count(); ++w) {
    if (runtime.worker(w).quarantined) ++out.quarantined;
  }
  const hw::EnergyReading energy = platform.read_energy(sim.now());
  out.energy_j = energy.total();
  return out;
}

class FaultFuzz : public ::testing::TestWithParam<FaultFuzzCase> {};

TEST_P(FaultFuzz, RandomFaultsPreserveCorrectnessLivenessAndDeterminism) {
  const FaultFuzzCase& fc = GetParam();
  sim::Xoshiro256 rng{fc.seed};

  // Random access script (same generator as the clean DAG fuzzer, plus
  // per-task work so kernels span real virtual time for faults to hit).
  std::vector<ScriptTask> script(static_cast<std::size_t>(fc.tasks));
  for (auto& st : script) {
    const int n_acc = 1 + static_cast<int>(rng.below(4));
    std::vector<bool> used(static_cast<std::size_t>(fc.handles), false);
    for (int a = 0; a < n_acc; ++a) {
      const int h = static_cast<int>(rng.below(static_cast<std::uint64_t>(fc.handles)));
      if (used[static_cast<std::size_t>(h)]) continue;
      used[static_cast<std::size_t>(h)] = true;
      st.accesses.emplace_back(h, static_cast<AccessMode>(rng.below(3)));
    }
    if (st.accesses.empty()) {
      st.accesses.emplace_back(0, AccessMode::kReadWrite);
    }
    st.flops = 1e11 + 1e12 * rng.uniform();
    st.priority = static_cast<std::int64_t>(rng.below(5));
  }
  const std::string plan = random_plan(rng, 4);
  SCOPED_TRACE("plan=" + plan);

  // Sequential reference.
  std::vector<std::int64_t> expected(static_cast<std::size_t>(fc.handles));
  for (int h = 0; h < fc.handles; ++h) expected[static_cast<std::size_t>(h)] = h + 1;
  for (std::size_t t = 0; t < script.size(); ++t) {
    std::int64_t acc = 0;
    for (const auto& [h, mode] : script[t].accesses) {
      if (mode != AccessMode::kWrite) acc = acc * 131 + expected[static_cast<std::size_t>(h)];
    }
    for (const auto& [h, mode] : script[t].accesses) {
      if (is_write(mode)) {
        expected[static_cast<std::size_t>(h)] = acc * 31 + static_cast<std::int64_t>(t);
      }
    }
  }

  const RunResult a = run_with_faults(fc, script, plan, fc.seed + 1);

  // 1. Numerical correctness under injected faults.
  EXPECT_EQ(a.cells, expected);
  // 2. Liveness: every task completed despite dropouts.
  EXPECT_EQ(a.completed, static_cast<std::uint64_t>(fc.tasks));
  // 3. Energy accounting survives dead devices.
  EXPECT_TRUE(std::isfinite(a.energy_j));
  EXPECT_GE(a.energy_j, 0.0);
  EXPECT_GT(a.makespan_s, 0.0);

  // 4. Determinism: identical (DAG, plan, seeds) replays bit-identically.
  const RunResult b = run_with_faults(fc, script, plan, fc.seed + 1);
  EXPECT_EQ(b.cells, expected);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.quarantined, b.quarantined);
}

INSTANTIATE_TEST_SUITE_P(
    SchedulersAndSeeds, FaultFuzz,
    ::testing::Values(FaultFuzzCase{"eager", 21, 6, 120}, FaultFuzzCase{"ws", 22, 8, 120},
                      FaultFuzzCase{"dm", 23, 6, 120}, FaultFuzzCase{"dmda", 24, 8, 150},
                      FaultFuzzCase{"dmdas", 25, 6, 120}, FaultFuzzCase{"dmdas", 26, 12, 200},
                      FaultFuzzCase{"random", 27, 6, 120}, FaultFuzzCase{"dmdae", 28, 8, 150}),
    [](const auto& param_info) {
      return std::string{param_info.param.scheduler} + "_seed" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace greencap::rt
