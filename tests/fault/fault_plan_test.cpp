// FaultPlan grammar: spec strings and the JSON document form must parse to
// the same events, reject malformed input with a diagnostic, and round-trip
// through to_string().
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace greencap::fault {
namespace {

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.size(), 0u);
}

TEST(FaultPlan, ParsesSingleCapfail) {
  const FaultPlan plan = FaultPlan::parse("capfail@gpu0:p=0.5,code=not_supported");
  ASSERT_EQ(plan.size(), 1u);
  const FaultEvent& e = plan.events()[0];
  EXPECT_EQ(e.kind, FaultKind::kCapWriteFail);
  EXPECT_EQ(e.gpu, 0);
  EXPECT_DOUBLE_EQ(e.probability, 0.5);
  EXPECT_EQ(e.code, CapError::kNotSupported);
  EXPECT_FALSE(e.permanent);
}

TEST(FaultPlan, ParsesMultipleEvents) {
  const FaultPlan plan =
      FaultPlan::parse("dropout@gpu2:t=12;drift@gpu1:t=5,watts=150;straggler@gpu3:t=2,until=8,factor=2.5");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kGpuDropout);
  EXPECT_EQ(plan.events()[0].gpu, 2);
  EXPECT_DOUBLE_EQ(plan.events()[0].t, 12.0);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kCapDrift);
  EXPECT_DOUBLE_EQ(plan.events()[1].watts, 150.0);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(plan.events()[2].until, 8.0);
  EXPECT_DOUBLE_EQ(plan.events()[2].factor, 2.5);
}

TEST(FaultPlan, AnyTargetAllowedForWindowedKinds) {
  const FaultPlan plan = FaultPlan::parse("capfail@any:p=0.1;straggler@*:factor=2");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].gpu, -1);
  EXPECT_EQ(plan.events()[1].gpu, -1);
}

TEST(FaultPlan, OpenEndedWindowNormalisesToInfinity) {
  const FaultPlan plan = FaultPlan::parse("straggler@gpu0:t=3,factor=2");
  EXPECT_EQ(plan.events()[0].until, std::numeric_limits<double>::infinity());
}

TEST(FaultPlan, CountAndPermanentFlags) {
  const FaultPlan plan = FaultPlan::parse("capfail@gpu1:count=2;capfail@gpu2:perm=1");
  EXPECT_EQ(plan.events()[0].count, 2);
  EXPECT_TRUE(plan.events()[1].permanent);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("explode@gpu0"), std::invalid_argument);   // unknown kind
  EXPECT_THROW(FaultPlan::parse("capfail"), std::invalid_argument);        // no target
  EXPECT_THROW(FaultPlan::parse("capfail@gpu0:zap=1"), std::invalid_argument);  // unknown key
  EXPECT_THROW(FaultPlan::parse("capfail@gpu0:p=1.5"), std::invalid_argument);  // p out of range
  EXPECT_THROW(FaultPlan::parse("dropout@any:t=1"), std::invalid_argument);     // timed needs gpu
  EXPECT_THROW(FaultPlan::parse("dropout@gpu0:t=-1"), std::invalid_argument);   // negative time
  EXPECT_THROW(FaultPlan::parse("straggler@gpu0:factor=0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("capfail@gpu0:code=bogus"), std::invalid_argument);
}

TEST(FaultPlan, JsonDocumentFormMatchesSpecForm) {
  std::istringstream json{R"({"events": [
    {"kind": "dropout", "gpu": 2, "t": 12.0},
    {"kind": "capfail", "gpu": 0, "p": 0.25, "code": "no_permission"},
    {"kind": "straggler", "gpu": 1, "t": 2.0, "until": 8.0, "factor": 3.0}
  ]})"};
  const FaultPlan plan = FaultPlan::parse_json(json);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kGpuDropout);
  EXPECT_EQ(plan.events()[0].gpu, 2);
  EXPECT_DOUBLE_EQ(plan.events()[1].probability, 0.25);
  EXPECT_EQ(plan.events()[1].code, CapError::kNoPermission);
  EXPECT_DOUBLE_EQ(plan.events()[2].factor, 3.0);
}

TEST(FaultPlan, JsonRejectsUnknownKeysAndGarbage) {
  std::istringstream unknown{R"({"events": [{"kind": "dropout", "gpu": 0, "t": 1, "zap": 2}]})"};
  EXPECT_THROW(FaultPlan::parse_json(unknown), std::invalid_argument);
  std::istringstream garbage{"not json"};
  EXPECT_THROW(FaultPlan::parse_json(garbage), std::invalid_argument);
  std::istringstream trailing{R"({"events": []} trailing)"};
  EXPECT_THROW(FaultPlan::parse_json(trailing), std::invalid_argument);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const std::string spec =
      "capfail@gpu0:p=0.5,code=not_supported;dropout@gpu2:t=12;straggler@gpu1:t=2,until=8,factor=2.5";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan replay = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(replay.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(replay.events()[i].kind, plan.events()[i].kind) << i;
    EXPECT_EQ(replay.events()[i].gpu, plan.events()[i].gpu) << i;
    EXPECT_DOUBLE_EQ(replay.events()[i].t, plan.events()[i].t) << i;
    EXPECT_DOUBLE_EQ(replay.events()[i].probability, plan.events()[i].probability) << i;
    EXPECT_DOUBLE_EQ(replay.events()[i].factor, plan.events()[i].factor) << i;
    EXPECT_EQ(replay.events()[i].code, plan.events()[i].code) << i;
  }
}

TEST(FaultPlan, MissingJsonFileThrows) {
  EXPECT_THROW(FaultPlan::parse("@/nonexistent/fault_plan.json"), std::invalid_argument);
}

}  // namespace
}  // namespace greencap::fault
