// FaultInjector semantics: virtual-clock windows, deterministic replay,
// timed-event delivery and cancellation.
#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace greencap::fault {
namespace {

constexpr std::uint64_t kSeed = 7;

TEST(Injector, CapfailWindowUsesRawClock) {
  // Caps are applied before arming, so a capfail window must trigger on
  // the raw virtual clock even on an unarmed injector.
  FaultInjector inj{FaultPlan::parse("capfail@gpu0:t=1,until=2,perm=1"), kSeed};
  EXPECT_FALSE(inj.cap_write_error(0, sim::SimTime::seconds(0.5)).has_value());
  EXPECT_TRUE(inj.cap_write_error(0, sim::SimTime::seconds(1.5)).has_value());
  EXPECT_FALSE(inj.cap_write_error(0, sim::SimTime::seconds(2.5)).has_value());
  EXPECT_FALSE(inj.cap_write_error(1, sim::SimTime::seconds(1.5)).has_value());  // other GPU
  EXPECT_EQ(inj.counts().cap_write_failures, 1u);
}

TEST(Injector, CapfailCountConsumesBudget) {
  FaultInjector inj{FaultPlan::parse("capfail@gpu1:count=2,code=not_supported"), kSeed};
  const sim::SimTime t = sim::SimTime::zero();
  ASSERT_TRUE(inj.cap_write_error(1, t).has_value());
  EXPECT_EQ(*inj.cap_write_error(1, t), CapError::kNotSupported);
  EXPECT_FALSE(inj.cap_write_error(1, t).has_value());  // budget spent
  EXPECT_EQ(inj.counts().cap_write_failures, 2u);
}

TEST(Injector, ProbabilisticCapfailReplaysBitIdentically) {
  const auto roll = [](std::uint64_t seed) {
    FaultInjector inj{FaultPlan::parse("capfail@any:p=0.5"), seed};
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(inj.cap_write_error(i % 4, sim::SimTime::zero()).has_value());
    }
    return fired;
  };
  EXPECT_EQ(roll(1), roll(1));
  EXPECT_NE(roll(1), roll(2));  // a different seed gives a different sequence
}

TEST(Injector, StragglerWindowIsArmingRelative) {
  FaultInjector inj{FaultPlan::parse("straggler@gpu0:t=1,until=3,factor=2.5"), kSeed};
  // Unarmed: no window can be active.
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0, sim::SimTime::seconds(2.0)), 1.0);

  sim::Simulator sim;
  sim.at(sim::SimTime::seconds(10.0), [] {});
  sim.run();  // advance the clock so arming origin is not zero
  inj.arm(sim);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0, sim::SimTime::seconds(10.5)), 1.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0, sim::SimTime::seconds(11.5)), 2.5);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(1, sim::SimTime::seconds(11.5)), 1.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0, sim::SimTime::seconds(13.5)), 1.0);
}

TEST(Injector, OverlappingStragglersTakeWorstFactor) {
  FaultInjector inj{
      FaultPlan::parse("straggler@gpu0:t=0,until=5,factor=2;straggler@any:t=1,until=2,factor=3"),
      kSeed};
  sim::Simulator sim;
  inj.arm(sim);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0, sim::SimTime::seconds(0.5)), 2.0);
  EXPECT_DOUBLE_EQ(inj.straggler_factor(0, sim::SimTime::seconds(1.5)), 3.0);
}

TEST(Injector, TimedFaultsFireAtScheduledInstant) {
  FaultInjector inj{FaultPlan::parse("dropout@gpu2:t=5;energyreset@gpu1:t=3;drift@gpu0:t=4,watts=150"),
                    kSeed};
  sim::Simulator sim;
  std::vector<std::pair<int, double>> dropouts, resets;
  std::vector<double> drift_watts;
  inj.on_dropout([&](int gpu, sim::SimTime now) { dropouts.emplace_back(gpu, now.sec()); });
  inj.on_energy_reset([&](int gpu, sim::SimTime now) { resets.emplace_back(gpu, now.sec()); });
  inj.on_drift([&](int, double, double watts, sim::SimTime) { drift_watts.push_back(watts); });
  inj.arm(sim);
  EXPECT_FALSE(inj.dropped(2));
  sim.run();
  ASSERT_EQ(dropouts.size(), 1u);
  EXPECT_EQ(dropouts[0].first, 2);
  EXPECT_DOUBLE_EQ(dropouts[0].second, 5.0);
  ASSERT_EQ(resets.size(), 1u);
  EXPECT_DOUBLE_EQ(resets[0].second, 3.0);
  ASSERT_EQ(drift_watts.size(), 1u);
  EXPECT_DOUBLE_EQ(drift_watts[0], 150.0);
  EXPECT_TRUE(inj.dropped(2));
  EXPECT_FALSE(inj.dropped(0));
  EXPECT_EQ(inj.counts().dropouts, 1u);
  EXPECT_EQ(inj.counts().energy_resets, 1u);
  EXPECT_EQ(inj.counts().drifts, 1u);
}

TEST(Injector, CancelPendingSuppressesUnfiredFaults) {
  FaultInjector inj{FaultPlan::parse("dropout@gpu0:t=10"), kSeed};
  sim::Simulator sim;
  int fired = 0;
  inj.on_dropout([&](int, sim::SimTime) { ++fired; });
  inj.arm(sim);
  inj.cancel_pending();
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(inj.dropped(0));
}

TEST(Injector, ArmTwiceThrows) {
  FaultInjector inj{FaultPlan{}, kSeed};
  sim::Simulator sim;
  inj.arm(sim);
  EXPECT_THROW(inj.arm(sim), std::logic_error);
}

TEST(Injector, MetricsCountInjectedFaults) {
  obs::MetricsRegistry metrics;
  FaultInjector inj{FaultPlan::parse("dropout@gpu0:t=1;capfail@gpu1:perm=1"), kSeed};
  inj.set_metrics(&metrics);
  sim::Simulator sim;
  inj.arm(sim);
  (void)inj.cap_write_error(1, sim::SimTime::zero());
  sim.run();
  EXPECT_EQ(metrics.counter("fault.injected.dropout").value(), 1u);
  EXPECT_EQ(metrics.counter("fault.injected.capfail").value(), 1u);
}

}  // namespace
}  // namespace greencap::fault
