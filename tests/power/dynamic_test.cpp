#include "power/dynamic.hpp"

#include <gtest/gtest.h>

#include "hw/presets.hpp"
#include "la/calibration_sets.hpp"
#include "la/codelets.hpp"
#include "la/operations.hpp"
#include "la/tile_matrix.hpp"
#include "power/sweep.hpp"

namespace greencap::power {
namespace {

struct ControlledRun {
  double efficiency = 0.0;
  double final_fraction = 1.0;
  int adjustments = 0;
  double final_cap_w = 0.0;
};

// A long stream of GEMM tiles on the 4-GPU node, with or without the
// online controller.
ControlledRun run_gemm_stream(bool controlled, DynamicCapOptions options = {}) {
  hw::Platform platform{hw::presets::platform_32_amd_4_a100()};
  sim::Simulator sim;
  rt::Runtime runtime{platform, sim, rt::RuntimeOptions{}};
  la::Codelets<double> codelets;
  rt::Calibrator calibrator{runtime};
  la::calibrate_codelets<double>(calibrator, codelets, {5760});

  la::TileMatrix<double> a{5760L * 10, 5760, false, "A"};
  la::TileMatrix<double> b{5760L * 10, 5760, false, "B"};
  la::TileMatrix<double> c{5760L * 10, 5760, false, "C"};
  a.register_with(runtime);
  b.register_with(runtime);
  c.register_with(runtime);
  la::submit_gemm<double>(runtime, codelets, a, b, c);

  DynamicCapController controller{runtime, &calibrator, options};
  if (controlled) {
    controller.start();
  }
  runtime.wait_all();

  ControlledRun out;
  const double joules = platform.read_energy(runtime.stats().makespan).total();
  out.efficiency = runtime.flops_completed() / joules / 1e9;
  out.final_fraction = controller.current_fraction();
  out.adjustments = controller.adjustments();
  out.final_cap_w = platform.gpu(0).power_cap();
  return out;
}

TEST(DynamicCapController, ImprovesEfficiencyOverDefault) {
  const ControlledRun baseline = run_gemm_stream(false);
  const ControlledRun controlled = run_gemm_stream(true);
  EXPECT_GT(controlled.adjustments, 3);
  EXPECT_GT(controlled.efficiency, baseline.efficiency * 1.05);
}

TEST(DynamicCapController, ConvergesNearOfflineBest) {
  const ControlledRun controlled = run_gemm_stream(true);
  const double best_cap =
      find_best_cap_w(hw::presets::a100_sxm4(), hw::Precision::kDouble, 5760);
  // Within 15 % of TDP of the offline sweep's optimum.
  EXPECT_NEAR(controlled.final_cap_w, best_cap, 0.15 * 400.0);
}

TEST(DynamicCapController, StartsDescendingFromTdp) {
  DynamicCapOptions options;
  options.period = sim::SimTime::seconds(100.0);  // never fires before the DAG drains
  const ControlledRun controlled = run_gemm_stream(true, options);
  EXPECT_EQ(controlled.adjustments, 0);
  EXPECT_DOUBLE_EQ(controlled.final_fraction, 1.0);
}

TEST(DynamicCapController, StepShrinksOnReversal) {
  DynamicCapOptions options;
  options.initial_step = 0.2;
  options.min_step = 0.02;
  const ControlledRun controlled = run_gemm_stream(true, options);
  // With a huge initial step the controller must overshoot and reverse at
  // least once; the final fraction cannot sit at either extreme.
  EXPECT_GT(controlled.final_fraction, 0.1);
  EXPECT_LT(controlled.final_fraction, 1.0);
}

TEST(DynamicCapController, PerGpuModeMatchesUniformOnSymmetricLoad) {
  DynamicCapOptions options;
  options.mode = DynamicCapOptions::Mode::kPerGpu;
  const ControlledRun per_gpu = run_gemm_stream(true, options);
  const ControlledRun baseline = run_gemm_stream(false);
  // A symmetric GEMM stream drives every per-GPU climber toward the same
  // optimum, so the mode must also beat the uncapped default.
  EXPECT_GT(per_gpu.efficiency, baseline.efficiency * 1.04);
}

TEST(DynamicCapController, PerGpuFractionsTrackEachDevice) {
  hw::Platform platform{hw::presets::platform_32_amd_4_a100()};
  sim::Simulator sim;
  rt::Runtime runtime{platform, sim, rt::RuntimeOptions{}};
  la::Codelets<double> codelets;
  rt::Calibrator calibrator{runtime};
  la::calibrate_codelets<double>(calibrator, codelets, {5760});

  // Pin all work to GPU 0: only its climber should move.
  rt::Codelet pinned;
  pinned.name = "pinned_gemm";
  pinned.klass = hw::KernelClass::kGemm;
  pinned.where = rt::kWhereCuda;
  pinned.can_execute = [](const rt::Worker& w, const rt::Task&) {
    return w.gpu() != nullptr && w.gpu()->index() == 0;
  };
  calibrator.calibrate(pinned, {hw::KernelWork{hw::KernelClass::kGemm, hw::Precision::kDouble,
                                               la::flops::gemm(5760), 5760}});
  for (int i = 0; i < 600; ++i) {
    rt::TaskDesc desc;
    desc.codelet = &pinned;
    desc.work = hw::KernelWork{hw::KernelClass::kGemm, hw::Precision::kDouble,
                               la::flops::gemm(5760), 5760};
    runtime.submit(std::move(desc));
  }

  DynamicCapOptions options;
  options.mode = DynamicCapOptions::Mode::kPerGpu;
  DynamicCapController controller{runtime, &calibrator, options};
  controller.start();
  runtime.wait_all();

  EXPECT_LT(controller.gpu_fraction(0), 0.95);  // busy GPU got capped
  for (std::size_t g = 1; g < 4; ++g) {
    EXPECT_DOUBLE_EQ(controller.gpu_fraction(g), 1.0);  // idle GPUs untouched
  }
  // An unbalanced configuration was discovered online.
  EXPECT_LT(platform.gpu(0).power_cap(), platform.gpu(1).power_cap());
}

TEST(DynamicCapController, DisarmsWhenWorkCompletes) {
  // Indirectly covered by every test reaching this line: wait_all() only
  // returns once the event queue drains, which requires the controller to
  // stop rescheduling itself.
  SUCCEED();
}

}  // namespace
}  // namespace greencap::power
