#include "power/sweep.hpp"

#include <gtest/gtest.h>

#include "core/paper_params.hpp"
#include "hw/presets.hpp"

namespace greencap::power {
namespace {

TEST(Sweep, CoversMinToTdp) {
  const auto result = sweep_gemm_caps(hw::presets::a100_sxm4(), hw::Precision::kDouble, 5120);
  ASSERT_FALSE(result.points.empty());
  EXPECT_NEAR(result.points.front().cap_w, 100.0, 1e-9);
  EXPECT_NEAR(result.points.back().cap_w, 400.0, 1e-9);
  EXPECT_EQ(result.default_index, result.points.size() - 1);
}

TEST(Sweep, CapsAscendInTwoPercentSteps) {
  const auto result = sweep_gemm_caps(hw::presets::a100_sxm4(), hw::Precision::kDouble, 5120);
  // 2 % of 400 W = 8 W steps; the final step to the TDP may be shorter.
  for (std::size_t i = 1; i + 1 < result.points.size(); ++i) {
    EXPECT_NEAR(result.points[i].cap_w - result.points[i - 1].cap_w, 8.0, 1e-9);
  }
  const double last_step =
      result.points.back().cap_w - result.points[result.points.size() - 2].cap_w;
  EXPECT_GT(last_step, 0.0);
  EXPECT_LE(last_step, 8.0 + 1e-9);
}

TEST(Sweep, PerformanceMonotoneInCap) {
  for (auto precision : {hw::Precision::kSingle, hw::Precision::kDouble}) {
    const auto result = sweep_gemm_caps(hw::presets::v100_pcie(), precision, 5120);
    for (std::size_t i = 1; i < result.points.size(); ++i) {
      EXPECT_GE(result.points[i].gflops, result.points[i - 1].gflops - 1e-9);
    }
  }
}

TEST(Sweep, PowerNeverExceedsCap) {
  const auto result = sweep_gemm_caps(hw::presets::a100_pcie(), hw::Precision::kSingle, 5760);
  for (const SweepPoint& p : result.points) {
    EXPECT_LE(p.power_w, p.cap_w + 1e-9);
  }
}

TEST(Sweep, EfficiencyIsConsistentWithComponents) {
  const auto result = sweep_gemm_caps(hw::presets::a100_sxm4(), hw::Precision::kDouble, 5120);
  for (const SweepPoint& p : result.points) {
    EXPECT_NEAR(p.efficiency_gflops_per_w, p.gflops / p.power_w, 1e-6);
    EXPECT_NEAR(p.energy_j, p.power_w * p.time_s, 1e-9);
  }
}

TEST(Sweep, SmallerMatricesLessEfficient) {
  // Paper: "Bigger matrix sizes tend to have better energy efficiency".
  const auto big = sweep_gemm_caps(hw::presets::a100_sxm4(), hw::Precision::kDouble, 5120);
  const auto small = sweep_gemm_caps(hw::presets::a100_sxm4(), hw::Precision::kDouble, 1024);
  EXPECT_GT(big.best().efficiency_gflops_per_w, small.best().efficiency_gflops_per_w);
}

TEST(Sweep, FindBestCapMatchesSweep) {
  const auto result = sweep_gemm_caps(hw::presets::v100_pcie(), hw::Precision::kDouble, 5120);
  EXPECT_DOUBLE_EQ(find_best_cap_w(hw::presets::v100_pcie(), hw::Precision::kDouble, 5120),
                   result.best().cap_w);
}

// -- Table I anchors: the calibrated models must reproduce the published
//    best-efficiency points within the sweep granularity. ------------------

class TableIAnchors : public ::testing::TestWithParam<core::paper::TableIRow> {};

TEST_P(TableIAnchors, BestCapNearPublished) {
  const auto& row = GetParam();
  const auto result =
      sweep_gemm_caps(hw::presets::gpu_by_name(row.gpu), row.precision, row.matrix_size);
  // Within 2 sweep steps (4 % of TDP) of the published peak position.
  EXPECT_NEAR(result.best().cap_pct_tdp, row.published_best_pct_tdp, 4.0)
      << row.gpu << " " << hw::to_string(row.precision);
}

TEST_P(TableIAnchors, EfficiencySavingNearPublished) {
  const auto& row = GetParam();
  const auto result =
      sweep_gemm_caps(hw::presets::gpu_by_name(row.gpu), row.precision, row.matrix_size);
  EXPECT_NEAR(result.efficiency_saving_pct(), row.published_saving_pct, 5.0)
      << row.gpu << " " << hw::to_string(row.precision);
}

TEST_P(TableIAnchors, SlowdownInPublishedBand) {
  const auto& row = GetParam();
  const auto result =
      sweep_gemm_caps(hw::presets::gpu_by_name(row.gpu), row.precision, row.matrix_size);
  // All of the paper's best points trade 8-25 % performance.
  EXPECT_GT(result.slowdown_pct(), 5.0);
  EXPECT_LT(result.slowdown_pct(), 28.0);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, TableIAnchors,
                         ::testing::ValuesIn(core::paper::table_i()),
                         [](const auto& test_info) {
                           std::string name = test_info.param.gpu;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name + "_" + hw::to_string(test_info.param.precision);
                         });

}  // namespace
}  // namespace greencap::power
