#include "power/manager.hpp"

#include <gtest/gtest.h>

#include "hw/presets.hpp"

namespace greencap::power {
namespace {

class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest() : platform_{hw::presets::platform_32_amd_4_a100()}, mgr_{platform_, sim_} {}

  hw::Platform platform_;
  sim::Simulator sim_;
  PowerManager mgr_;
};

TEST_F(ManagerTest, HighAndLowResolveWithoutSweep) {
  EXPECT_DOUBLE_EQ(mgr_.watts_for(0, Level::kHigh), 400.0);
  EXPECT_DOUBLE_EQ(mgr_.watts_for(0, Level::kLow), 100.0);
}

TEST_F(ManagerTest, BestUnresolvedThrows) {
  EXPECT_THROW(mgr_.watts_for(0, Level::kBest), std::invalid_argument);
  EXPECT_THROW(mgr_.apply(GpuConfig::parse("BBBB")), std::invalid_argument);
}

TEST_F(ManagerTest, ResolveBestCapsFromSweep) {
  mgr_.resolve_best_caps(hw::Precision::kDouble, 5120);
  const double best = mgr_.watts_for(0, Level::kBest);
  EXPECT_GT(best, 150.0);
  EXPECT_LT(best, 300.0);  // the SXM4 double best sits near 54 % of 400 W
}

TEST_F(ManagerTest, ManualBestOverride) {
  mgr_.set_best_cap_w(2, 216.0);
  EXPECT_DOUBLE_EQ(mgr_.watts_for(2, Level::kBest), 216.0);
}

TEST_F(ManagerTest, ApplySetsDeviceCaps) {
  mgr_.resolve_best_caps(hw::Precision::kDouble, 5120);
  mgr_.apply(GpuConfig::parse("HBLH"));
  EXPECT_DOUBLE_EQ(platform_.gpu(0).power_cap(), 400.0);
  EXPECT_DOUBLE_EQ(platform_.gpu(1).power_cap(), mgr_.watts_for(1, Level::kBest));
  EXPECT_DOUBLE_EQ(platform_.gpu(2).power_cap(), 100.0);
  EXPECT_DOUBLE_EQ(platform_.gpu(3).power_cap(), 400.0);
}

TEST_F(ManagerTest, ApplyRejectsWrongWidth) {
  EXPECT_THROW(mgr_.apply(GpuConfig::parse("HH")), std::invalid_argument);
}

TEST_F(ManagerTest, CpuCapApplies) {
  mgr_.cap_cpu(0, 0.5);
  EXPECT_DOUBLE_EQ(platform_.cpu(0).power_cap(), 100.0);  // 50 % of 200 W
}

TEST_F(ManagerTest, CpuCapValidatesFraction) {
  EXPECT_THROW(mgr_.cap_cpu(0, 0.0), std::invalid_argument);
  EXPECT_THROW(mgr_.cap_cpu(0, 1.5), std::invalid_argument);
}

TEST_F(ManagerTest, ResetRestoresDefaults) {
  mgr_.resolve_best_caps(hw::Precision::kDouble, 5120);
  mgr_.apply(GpuConfig::parse("LLLL"));
  mgr_.cap_cpu(0, 0.5);
  mgr_.reset();
  for (std::size_t g = 0; g < platform_.gpu_count(); ++g) {
    EXPECT_DOUBLE_EQ(platform_.gpu(g).power_cap(), platform_.gpu(g).spec().tdp_w);
  }
  EXPECT_DOUBLE_EQ(platform_.cpu(0).power_cap(), 200.0);
}

TEST_F(ManagerTest, PerPrecisionBestCapsDiffer) {
  mgr_.resolve_best_caps(hw::Precision::kDouble, 5120);
  const double best_double = mgr_.watts_for(0, Level::kBest);
  mgr_.resolve_best_caps(hw::Precision::kSingle, 5120);
  const double best_single = mgr_.watts_for(0, Level::kBest);
  // Paper Table I: single 40 % vs double 54 % of TDP on the SXM4.
  EXPECT_LT(best_single, best_double);
}

}  // namespace
}  // namespace greencap::power
