#include "power/config.hpp"

#include <gtest/gtest.h>

#include <set>

namespace greencap::power {
namespace {

TEST(GpuConfig, ParseRoundTrips) {
  for (const char* text : {"HHHH", "HHBB", "LLLL", "HBLB", "B", "hhbb"}) {
    const GpuConfig cfg = GpuConfig::parse(text);
    std::string upper = text;
    for (char& c : upper) c = static_cast<char>(::toupper(c));
    EXPECT_EQ(cfg.to_string(), upper);
  }
}

TEST(GpuConfig, ParseRejectsGarbage) {
  EXPECT_THROW(GpuConfig::parse(""), std::invalid_argument);
  EXPECT_THROW(GpuConfig::parse("HHXB"), std::invalid_argument);
  EXPECT_THROW(GpuConfig::parse("H H"), std::invalid_argument);
}

TEST(GpuConfig, LevelsAccessible) {
  const GpuConfig cfg = GpuConfig::parse("HBL");
  EXPECT_EQ(cfg.size(), 3u);
  EXPECT_EQ(cfg.level(0), Level::kHigh);
  EXPECT_EQ(cfg.level(1), Level::kBest);
  EXPECT_EQ(cfg.level(2), Level::kLow);
  EXPECT_THROW(cfg.level(3), std::out_of_range);
}

TEST(GpuConfig, Uniform) {
  EXPECT_EQ(GpuConfig::uniform(4, Level::kBest).to_string(), "BBBB");
  EXPECT_TRUE(GpuConfig::uniform(2, Level::kHigh).is_default());
  EXPECT_FALSE(GpuConfig::uniform(2, Level::kBest).is_default());
}

TEST(GpuConfig, Equality) {
  EXPECT_EQ(GpuConfig::parse("HB"), GpuConfig::parse("hb"));
  EXPECT_FALSE(GpuConfig::parse("HB") == GpuConfig::parse("BH"));
}

TEST(GpuConfig, LevelCharRoundTrip) {
  for (Level l : {Level::kLow, Level::kBest, Level::kHigh}) {
    EXPECT_EQ(level_from_char(to_char(l)), l);
  }
}

TEST(StandardLadder, FourGpusMatchesPaperPresentation) {
  const auto ladder = standard_ladder(4);
  std::vector<std::string> names;
  names.reserve(ladder.size());
  for (const auto& cfg : ladder) names.push_back(cfg.to_string());
  EXPECT_EQ(names, (std::vector<std::string>{"LLLL", "HLLL", "HHLL", "HHHL", "BBBB", "HBBB",
                                             "HHBB", "HHHB", "HHHH"}));
}

TEST(StandardLadder, TwoGpus) {
  const auto ladder = standard_ladder(2);
  std::vector<std::string> names;
  for (const auto& cfg : ladder) names.push_back(cfg.to_string());
  EXPECT_EQ(names, (std::vector<std::string>{"LL", "HL", "BB", "HB", "HH"}));
}

TEST(StandardLadder, EndsWithDefault) {
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const auto ladder = standard_ladder(n);
    EXPECT_TRUE(ladder.back().is_default());
  }
}

TEST(AllConfigs, CountsArePowersOfThree) {
  EXPECT_EQ(all_configs(1).size(), 3u);
  EXPECT_EQ(all_configs(2).size(), 9u);
  EXPECT_EQ(all_configs(4).size(), 81u);
}

TEST(AllConfigs, AllDistinct) {
  const auto configs = all_configs(3);
  std::set<std::string> seen;
  for (const auto& cfg : configs) {
    seen.insert(cfg.to_string());
  }
  EXPECT_EQ(seen.size(), 27u);
}

TEST(AllConfigs, ContainsPaperPermutations) {
  // "the configuration HHHB was evaluated, as were the combinations HHBH,
  // HBHH and BHHH" — the exhaustive set must contain them all.
  const auto configs = all_configs(4);
  std::set<std::string> seen;
  for (const auto& cfg : configs) seen.insert(cfg.to_string());
  for (const char* perm : {"HHHB", "HHBH", "HBHH", "BHHH"}) {
    EXPECT_TRUE(seen.contains(perm)) << perm;
  }
}

}  // namespace
}  // namespace greencap::power
