#!/usr/bin/env python3
"""Validate a GreenCap profile.json against tools/schema/profile.schema.json.

Stdlib only (no jsonschema dependency): implements exactly the draft-07
subset the schema uses — type / const / enum / required / properties /
additionalProperties:false / items / pattern / minimum / $ref into
#/definitions — and then re-verifies the profiler's semantic invariants
from the serialized numbers:

  * per-device and total energy conservation:
      tasks_j + static_j + residual_j == metered_j        (<= --rel-tol)
  * the time-critical path telescopes to the measured makespan
  * task energies in the tasks[] array sum to the devices' task buckets

Exit status 0 on success, 1 on any schema or invariant violation.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


def _type_ok(value, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "null":
        return value is None
    if expected == "boolean":
        return isinstance(value, bool)
    raise ValueError(f"unsupported schema type {expected!r}")


class Validator:
    def __init__(self, schema: dict):
        self.root = schema
        self.errors: list[str] = []

    def _resolve(self, node: dict) -> dict:
        while "$ref" in node:
            ref = node["$ref"]
            if not ref.startswith("#/"):
                raise ValueError(f"unsupported $ref {ref!r}")
            target = self.root
            for part in ref[2:].split("/"):
                target = target[part]
            node = target
        return node

    def check(self, value, node: dict, path: str) -> None:
        node = self._resolve(node)
        err = self.errors.append

        if "const" in node and value != node["const"]:
            err(f"{path}: expected const {node['const']!r}, got {value!r}")
            return
        if "enum" in node and value not in node["enum"]:
            err(f"{path}: {value!r} not in {node['enum']}")
            return
        if "type" in node:
            types = node["type"] if isinstance(node["type"], list) else [node["type"]]
            if not any(_type_ok(value, t) for t in types):
                err(f"{path}: expected {'/'.join(types)}, got {type(value).__name__}")
                return
        if isinstance(value, str) and "pattern" in node:
            if not re.search(node["pattern"], value):
                err(f"{path}: {value!r} does not match /{node['pattern']}/")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if "minimum" in node and value < node["minimum"]:
                err(f"{path}: {value} below minimum {node['minimum']}")
        if isinstance(value, dict):
            props = node.get("properties", {})
            for key in node.get("required", []):
                if key not in value:
                    err(f"{path}: missing required property {key!r}")
            if node.get("additionalProperties") is False:
                for key in value:
                    if key not in props:
                        err(f"{path}: unexpected property {key!r}")
            for key, sub in props.items():
                if key in value:
                    self.check(value[key], sub, f"{path}.{key}")
        if isinstance(value, list) and "items" in node:
            for i, item in enumerate(value):
                self.check(item, node["items"], f"{path}[{i}]")


def check_invariants(profile: dict, rel_tol: float) -> list[str]:
    problems: list[str] = []

    def close(a: float, b: float) -> bool:
        return abs(a - b) <= rel_tol * max(abs(a), abs(b), 1.0)

    # Per-device conservation, and device buckets vs. the tasks[] array.
    task_j_by_device: dict[tuple[str, int], float] = {}
    worker_device = {
        w["id"]: (w["device"]["kind"], w["device"]["index"]) for w in profile["workers"]
    }
    for task in profile["tasks"]:
        dev = worker_device.get(task["worker"])
        if dev is not None and task["energy_j"] is not None:
            task_j_by_device[dev] = task_j_by_device.get(dev, 0.0) + task["energy_j"]

    totals = {"metered": 0.0, "tasks": 0.0, "static": 0.0, "residual": 0.0}
    for dev in profile["devices"]:
        key = (dev["kind"], dev["index"])
        label = f"device {dev['kind']}{dev['index']}"
        parts = (dev["tasks_j"], dev["static_j"], dev["residual_j"])
        if any(p is None for p in parts) or dev["metered_j"] is None:
            problems.append(f"{label}: non-finite energy term")
            continue
        if not close(sum(parts), dev["metered_j"]):
            problems.append(
                f"{label}: tasks+static+residual = {sum(parts)!r} "
                f"!= metered {dev['metered_j']!r}"
            )
        recomputed = task_j_by_device.get(key, 0.0)
        if not close(dev["tasks_j"], recomputed):
            problems.append(
                f"{label}: tasks_j {dev['tasks_j']!r} != Σ tasks[] energies {recomputed!r}"
            )
        totals["metered"] += dev["metered_j"]
        totals["tasks"] += dev["tasks_j"]
        totals["static"] += dev["static_j"]
        totals["residual"] += dev["residual_j"]

    att = profile["attribution"]
    for name, value in totals.items():
        if not close(att[f"total_{name}_j"], value):
            problems.append(
                f"attribution.total_{name}_j {att[f'total_{name}_j']!r} != "
                f"Σ devices {value!r}"
            )

    # Critical path telescopes to the measured makespan.
    run = profile["run"]
    cp = profile["critical_path"]["time"]
    makespan = run["makespan_s"] - run["window"]["begin_s"]
    if profile["tasks"]:
        if not close(cp["length_s"], makespan):
            problems.append(
                f"critical path length {cp['length_s']!r} != makespan {makespan!r}"
            )
        split = cp["exec_s"] + cp["transfer_wait_s"] + cp["other_wait_s"]
        if not close(split, cp["length_s"]):
            problems.append(
                f"critical path split {split!r} != length {cp['length_s']!r}"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("profile", type=Path, help="profile.json to validate")
    parser.add_argument(
        "--schema",
        type=Path,
        default=Path(__file__).resolve().parent / "schema" / "profile.schema.json",
    )
    parser.add_argument("--rel-tol", type=float, default=1e-9)
    args = parser.parse_args()

    try:
        profile = json.loads(args.profile.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {args.profile}: {exc}", file=sys.stderr)
        return 1
    schema = json.loads(args.schema.read_text())

    validator = Validator(schema)
    validator.check(profile, schema, "$")
    problems = validator.errors
    if not problems:  # invariants assume the shape is right
        problems += check_invariants(profile, args.rel_tol)

    if problems:
        for p in problems:
            print(f"FAIL {p}", file=sys.stderr)
        print(f"{args.profile}: {len(problems)} problem(s)", file=sys.stderr)
        return 1

    n_tasks = len(profile["tasks"])
    n_devices = len(profile["devices"])
    print(
        f"{args.profile}: OK — schema valid, energy conserved across "
        f"{n_devices} devices / {n_tasks} tasks, critical path == makespan"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
