#!/usr/bin/env python3
"""Validate a GreenCap checkpoint file (.gckp) without the binary decoder.

Stdlib only. Checks everything a tool can check from the container format
alone (src/ckpt/file.hpp):

  * binary layout: magic "GCKP", format version 1, manifest/payload section
    lengths that exactly tile the file, 4-byte CRC trailer
  * integrity: the whole-file CRC-32 (IEEE) over every byte before the
    trailer, and the manifest's embedded payload_crc32/payload_bytes
    against the payload actually present
  * the manifest against tools/schema/checkpoint.schema.json (same
    draft-07 subset validator as tools/check_profile.py)
  * cross-section invariants: the payload opens with the campaign section
    tag "CAMP" whose experiment count equals the manifest's `completed`;
    campaign checkpoints carry t_virtual_s == 0 and a boundary/signal/final
    reason, run checkpoints a periodic/watchdog/signal/final reason

Exit status 0 on success, 1 on any violation (one FAIL line each).
"""

from __future__ import annotations

import argparse
import json
import re
import struct
import sys
import zlib
from pathlib import Path

MAGIC = b"GCKP"
VERSION = 1
HEADER = struct.Struct("<4sIQ")  # magic, version, manifest length
CAMPAIGN_REASONS = {"boundary", "signal", "final"}
RUN_REASONS = {"periodic", "watchdog", "signal", "final"}


def _type_ok(value, expected: str) -> bool:
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "null":
        return value is None
    if expected == "boolean":
        return isinstance(value, bool)
    raise ValueError(f"unsupported schema type {expected!r}")


class Validator:
    def __init__(self, schema: dict):
        self.root = schema
        self.errors: list[str] = []

    def _resolve(self, node: dict) -> dict:
        while "$ref" in node:
            ref = node["$ref"]
            if not ref.startswith("#/"):
                raise ValueError(f"unsupported $ref {ref!r}")
            target = self.root
            for part in ref[2:].split("/"):
                target = target[part]
            node = target
        return node

    def check(self, value, node: dict, path: str) -> None:
        node = self._resolve(node)
        err = self.errors.append

        if "const" in node and value != node["const"]:
            err(f"{path}: expected const {node['const']!r}, got {value!r}")
            return
        if "enum" in node and value not in node["enum"]:
            err(f"{path}: {value!r} not in {node['enum']}")
            return
        if "type" in node:
            types = node["type"] if isinstance(node["type"], list) else [node["type"]]
            if not any(_type_ok(value, t) for t in types):
                err(f"{path}: expected {'/'.join(types)}, got {type(value).__name__}")
                return
        if isinstance(value, str) and "pattern" in node:
            if not re.search(node["pattern"], value):
                err(f"{path}: {value!r} does not match /{node['pattern']}/")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if "minimum" in node and value < node["minimum"]:
                err(f"{path}: {value} below minimum {node['minimum']}")
            if "maximum" in node and value > node["maximum"]:
                err(f"{path}: {value} above maximum {node['maximum']}")
        if isinstance(value, dict):
            props = node.get("properties", {})
            for key in node.get("required", []):
                if key not in value:
                    err(f"{path}: missing required property {key!r}")
            if node.get("additionalProperties") is False:
                for key in value:
                    if key not in props:
                        err(f"{path}: unexpected property {key!r}")
            for key, sub in props.items():
                if key in value:
                    self.check(value[key], sub, f"{path}.{key}")
        if isinstance(value, list) and "items" in node:
            for i, item in enumerate(value):
                self.check(item, node["items"], f"{path}[{i}]")


def parse_container(raw: bytes) -> tuple[dict | None, bytes, list[str]]:
    """Returns (manifest, payload, problems). Layout problems abort early —
    nothing after a bad length field can be trusted."""
    problems: list[str] = []
    if len(raw) < HEADER.size + 8 + 4:
        return None, b"", [f"file too short for a checkpoint ({len(raw)} bytes)"]

    magic, version, manifest_len = HEADER.unpack_from(raw, 0)
    if magic != MAGIC:
        return None, b"", [f"bad magic {magic!r} (expected {MAGIC!r})"]
    if version != VERSION:
        problems.append(f"unsupported format version {version} (expected {VERSION})")

    manifest_at = HEADER.size
    if manifest_len > len(raw) - manifest_at - 8 - 4:
        problems.append(
            f"truncated: manifest claims {manifest_len} bytes but only "
            f"{len(raw) - manifest_at - 12} fit before payload length and CRC"
        )
        return None, b"", problems
    manifest_json = raw[manifest_at : manifest_at + manifest_len]

    (payload_len,) = struct.unpack_from("<Q", raw, manifest_at + manifest_len)
    payload_at = manifest_at + manifest_len + 8
    remain = len(raw) - payload_at
    if payload_len > remain or remain - payload_len != 4:
        problems.append(
            f"truncated: payload claims {payload_len} bytes but {remain} "
            f"remain before the CRC"
        )
        return None, b"", problems
    payload = raw[payload_at : payload_at + payload_len]

    (stored_crc,) = struct.unpack_from("<I", raw, len(raw) - 4)
    actual_crc = zlib.crc32(raw[:-4]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        problems.append(
            f"CRC mismatch: file trailer {stored_crc:#010x}, "
            f"computed {actual_crc:#010x} — corrupt or bit-flipped"
        )

    try:
        manifest = json.loads(manifest_json)
    except json.JSONDecodeError as exc:
        problems.append(f"manifest is not valid JSON: {exc}")
        return None, payload, problems
    if not isinstance(manifest, dict):
        problems.append(f"manifest is {type(manifest).__name__}, expected an object")
        return None, payload, problems
    return manifest, payload, problems


def check_invariants(manifest: dict, payload: bytes) -> list[str]:
    problems: list[str] = []

    if manifest["payload_bytes"] != len(payload):
        problems.append(
            f"manifest payload_bytes {manifest['payload_bytes']} != "
            f"payload section length {len(payload)}"
        )
    payload_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if manifest["payload_crc32"] != payload_crc:
        problems.append(
            f"manifest payload_crc32 {manifest['payload_crc32']:#010x} != "
            f"computed {payload_crc:#010x}"
        )

    kind, reason = manifest["kind"], manifest["reason"]
    allowed = CAMPAIGN_REASONS if kind == "campaign" else RUN_REASONS
    if reason not in allowed:
        problems.append(f"reason {reason!r} not valid for a {kind} checkpoint")
    if kind == "campaign" and manifest["t_virtual_s"] != 0:
        problems.append(
            f"campaign checkpoint carries t_virtual_s {manifest['t_virtual_s']} (expected 0)"
        )

    # Every payload opens with the campaign section: tag "CAMP" then a
    # u64 LE experiment count that must agree with the manifest.
    if len(payload) < 12:
        problems.append(f"payload too short for a campaign section ({len(payload)} bytes)")
    elif payload[:4] != b"CAMP":
        problems.append(f"payload does not open with the campaign tag (got {payload[:4]!r})")
    else:
        (count,) = struct.unpack_from("<Q", payload, 4)
        if count != manifest["completed"]:
            problems.append(
                f"manifest claims {manifest['completed']} completed experiments "
                f"but the campaign section holds {count}"
            )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("checkpoint", type=Path, help=".gckp file to validate")
    parser.add_argument(
        "--schema",
        type=Path,
        default=Path(__file__).resolve().parent / "schema" / "checkpoint.schema.json",
    )
    parser.add_argument(
        "--expect-kind", choices=["campaign", "run"], help="also require this manifest kind"
    )
    args = parser.parse_args()

    try:
        raw = args.checkpoint.read_bytes()
    except OSError as exc:
        print(f"error: {args.checkpoint}: {exc}", file=sys.stderr)
        return 1
    schema = json.loads(args.schema.read_text())

    manifest, payload, problems = parse_container(raw)
    if manifest is not None:
        validator = Validator(schema)
        validator.check(manifest, schema, "$")
        problems += validator.errors
        if not validator.errors:  # invariants assume the shape is right
            problems += check_invariants(manifest, payload)
            if args.expect_kind and manifest["kind"] != args.expect_kind:
                problems.append(
                    f"expected a {args.expect_kind} checkpoint, got {manifest['kind']!r}"
                )

    if problems:
        for p in problems:
            print(f"FAIL {p}", file=sys.stderr)
        print(f"{args.checkpoint}: {len(problems)} problem(s)", file=sys.stderr)
        return 1

    print(
        f"{args.checkpoint}: OK — {manifest['kind']} checkpoint "
        f"({manifest['reason']}), {manifest['completed']} completed experiment(s), "
        f"{manifest['payload_bytes']} payload bytes, CRCs verified"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
