#!/usr/bin/env python3
"""Determinism gate for the parallel campaign engine (docs/ENGINE.md).

Runs a GreenCap bench binary once per requested --jobs value (serial
first) in a private working directory each, then byte-compares stdout and
every exported artifact against the serial run. The engine's contract is
that results, tables, and artifacts are identical at ANY job count — this
script is that contract, executable.

Stdlib only. Exit 0 when every job count reproduces the serial bytes,
1 otherwise.

Example (the CI invocation):
  check_engine_determinism.py --binary build/bench/fig3_double_configs \
      --jobs 1,4,8 \
      -- --quick --csv --summary-json summary.json --trace-json trace.json
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path


def artifact_args(template: list[str], directory: Path) -> tuple[list[str], list[Path]]:
    """Rewrites FILE operands of known artifact flags to bare filenames
    (each run uses its own cwd, so stderr lines naming the file stay
    identical across runs), returning the rewritten argv tail and the
    artifact paths to compare."""
    out: list[str] = []
    artifacts: list[Path] = []
    expects_file = False
    for tok in template:
        if expects_file:
            name = Path(tok).name
            artifacts.append(directory / name)
            out.append(name)
            expects_file = False
            continue
        out.append(tok)
        # "--csv" is a boolean flag; every other *-json/-csv/-html flag
        # takes a FILE operand.
        if tok.startswith("--") and tok != "--csv" and tok.endswith(("-json", "-csv", "-html")):
            expects_file = True
    return out, artifacts


def run_at(binary: Path, jobs: int, template: list[str], directory: Path):
    args, artifacts = artifact_args(template, directory)
    proc = subprocess.run(
        [str(binary), "--jobs", str(jobs), *args],
        cwd=directory,
        capture_output=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(
            f"FAIL: --jobs {jobs} exited {proc.returncode}\n{proc.stderr.decode()}\n"
        )
        sys.exit(1)
    return proc.stdout, artifacts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True, type=Path)
    parser.add_argument(
        "--jobs",
        default="1,4,8",
        help="comma-separated job counts; the first is the reference (default 1,4,8)",
    )
    parser.add_argument("rest", nargs=argparse.REMAINDER,
                        help="binary arguments after --")
    args = parser.parse_args()
    template = args.rest[1:] if args.rest[:1] == ["--"] else args.rest
    job_counts = [int(j) for j in args.jobs.split(",")]

    with tempfile.TemporaryDirectory(prefix="engine_det_") as tmp:
        base = Path(tmp)
        reference_jobs = job_counts[0]
        ref_dir = base / f"jobs{reference_jobs}"
        ref_dir.mkdir()
        ref_stdout, ref_artifacts = run_at(
            args.binary, reference_jobs, template, ref_dir
        )

        failures = 0
        for jobs in job_counts[1:]:
            run_dir = base / f"jobs{jobs}"
            run_dir.mkdir()
            stdout, artifacts = run_at(args.binary, jobs, template, run_dir)
            if stdout != ref_stdout:
                sys.stderr.write(f"FAIL: stdout differs at --jobs {jobs}\n")
                failures += 1
            for ref_path, path in zip(ref_artifacts, artifacts):
                if not path.exists():
                    sys.stderr.write(
                        f"FAIL: {path.name} missing at --jobs {jobs}\n"
                    )
                    failures += 1
                elif path.read_bytes() != ref_path.read_bytes():
                    sys.stderr.write(
                        f"FAIL: {path.name} differs at --jobs {jobs}\n"
                    )
                    failures += 1
            if failures == 0:
                print(f"ok: --jobs {jobs} is byte-identical to --jobs {reference_jobs} "
                      f"(stdout + {len(artifacts)} artifact(s))")

        if failures:
            sys.stderr.write(f"{failures} determinism failure(s)\n")
            return 1
    print(f"engine determinism: all of --jobs {args.jobs} byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
