// greencap — command-line experiment runner.
//
// Runs one capping experiment end-to-end and prints the metrics; the
// scriptable entry point for users who want the paper's protocol without
// writing C++.
//
//   greencap --platform 32-AMD-4-A100 --op gemm --precision double
//            --n 74880 --nb 5760 --config HHBB [--cpu-cap 1:0.48]
//            [--scheduler dmdas] [--baseline] [--stale-models]
//            [--trace-json FILE] [--metrics-json FILE]
//            [--telemetry-period-ms N] [--telemetry-csv FILE]
//            [--decisions-json FILE] [--model-report]
//
// With --baseline the default (all-H) run executes too and the deltas are
// reported, like the paper's figures. The observability flags capture the
// run as a Perfetto-loadable trace, a metrics snapshot, a power/occupancy
// time-series, or a scheduler decision log (all =VALUE or space-separated).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "core/experiment.hpp"
#include "core/paper_params.hpp"
#include "core/report.hpp"
#include "hw/presets.hpp"
#include "obs/artifact.hpp"
#include "obs/trace_export.hpp"
#include "prof/html_report.hpp"
#include "prof/profile.hpp"

using namespace greencap;

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --platform NAME     24-Intel-2-V100 | 64-AMD-2-A100 | 32-AMD-4-A100\n"
      "  --op NAME           gemm | potrf | getrf | geqrf | gelqf (default gemm)\n"
      "  --precision P       single | double        (default double)\n"
      "  --n N               matrix order           (default: paper's Table II)\n"
      "  --nb NB             tile order             (default: paper's Table II)\n"
      "  --config CFG        H/B/L letters, one per GPU (default all H)\n"
      "  --cpu-cap PKG:FRAC  RAPL-cap package PKG to FRAC of TDP\n"
      "  --scheduler S       eager|random|ws|dm|dmda|dmdas|dmdae (default dmdas)\n"
      "  --baseline          also run all-H and print deltas\n"
      "  --stale-models      maladaptation ablation (no recalibration)\n"
      "  --seed N            RNG seed (default 42)\n"
      "observability:\n"
      "  --trace-json FILE        Chrome/Perfetto trace-event export\n"
      "  --metrics-json FILE      metrics registry snapshot\n"
      "  --telemetry-period-ms N  sample power/occupancy every N virtual ms\n"
      "  --telemetry-json FILE    telemetry series as JSON\n"
      "  --telemetry-csv FILE     telemetry series as CSV\n"
      "  --decisions-json FILE    scheduler decision log\n"
      "  --model-report           print perf-model accuracy per codelet/arch\n"
      "  --profile-json FILE      energy-attribution profile (docs/PROFILING.md)\n"
      "  --profile-html FILE      self-contained HTML run report\n"
      "fault injection / resilience (docs/ROBUSTNESS.md):\n"
      "  --faults SPEC            fault plan: kind@gpuN:key=val,... (';'-separated)\n"
      "                           or @FILE for a JSON plan\n"
      "  --fault-seed N           injector RNG seed (default: derived from --seed)\n"
      "  --reconcile-ms N         verify/re-assert cap drift every N virtual ms\n"
      "  --degrade                fall back to H on cap failure instead of aborting\n"
      "  --cap-retries N          retry budget per cap write (default 3)\n"
      "  --degradation-json FILE  degradation report export\n",
      argv0);
  std::exit(code);
}

void print_result(const char* title, const core::ExperimentResult& r) {
  std::printf("%s  [%s]\n", title, r.config.describe().c_str());
  std::printf("  time        : %.3f s\n", r.time_s);
  std::printf("  performance : %.1f Gflop/s\n", r.gflops);
  std::printf("  energy      : %.1f J (GPU %.1f, CPU %.1f)\n", r.total_energy_j,
              r.energy.gpu_total(), r.energy.cpu_total());
  std::printf("  efficiency  : %.2f Gflop/s/W\n", r.efficiency_gflops_per_w);
  std::printf("  tasks       : %llu GPU / %llu CPU\n",
              static_cast<unsigned long long>(r.gpu_tasks),
              static_cast<unsigned long long>(r.cpu_tasks));
}

/// Writes `writer(os)` to `path` (checked), or dies with a message.
template <typename Writer>
void write_file(const std::string& path, const char* what, Writer&& writer) {
  if (!obs::write_artifact(path, what, std::forward<Writer>(writer))) {
    std::exit(1);
  }
  std::printf("  wrote %-11s: %s\n", what, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg;
  cfg.platform = "32-AMD-4-A100";
  bool baseline = false;
  std::optional<std::int64_t> n_override;
  std::optional<int> nb_override;
  std::string config_text;
  std::string trace_json, metrics_json, telemetry_json, telemetry_csv, decisions_json;
  std::string profile_json, profile_html;
  std::string degradation_json;
  bool model_report = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    // Observability flags accept both "--flag VALUE" and "--flag=VALUE".
    auto match_value = [&](const char* name, std::string* out) -> bool {
      const std::size_t len = std::strlen(name);
      if (arg == name) {
        *out = next();
        return true;
      }
      if (arg.size() > len + 1 && arg.compare(0, len, name) == 0 && arg[len] == '=') {
        *out = arg.substr(len + 1);
        return true;
      }
      return false;
    };
    std::string value;
    if (match_value("--trace-json", &trace_json) ||
        match_value("--metrics-json", &metrics_json) ||
        match_value("--telemetry-json", &telemetry_json) ||
        match_value("--telemetry-csv", &telemetry_csv) ||
        match_value("--decisions-json", &decisions_json) ||
        match_value("--profile-json", &profile_json) ||
        match_value("--profile-html", &profile_html) ||
        match_value("--faults", &cfg.resilience.faults) ||
        match_value("--degradation-json", &degradation_json)) {
      continue;
    }
    if (match_value("--telemetry-period-ms", &value)) {
      cfg.obs.telemetry_period_ms = std::atof(value.c_str());
      continue;
    }
    if (match_value("--fault-seed", &value)) {
      cfg.resilience.fault_seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
      continue;
    }
    if (match_value("--reconcile-ms", &value)) {
      cfg.resilience.reconcile_ms = std::atof(value.c_str());
      continue;
    }
    if (match_value("--cap-retries", &value)) {
      cfg.resilience.max_cap_retries = std::atoi(value.c_str());
      continue;
    }
    if (arg == "--degrade") {
      cfg.resilience.degrade = true;
      continue;
    }
    if (arg == "--model-report") {
      model_report = true;
      continue;
    }
    if (arg == "--platform") {
      cfg.platform = next();
    } else if (arg == "--op") {
      const std::string op = next();
      if (op == "gemm") cfg.op = core::Operation::kGemm;
      else if (op == "potrf") cfg.op = core::Operation::kPotrf;
      else if (op == "getrf") cfg.op = core::Operation::kGetrf;
      else if (op == "geqrf") cfg.op = core::Operation::kGeqrf;
      else if (op == "gelqf") cfg.op = core::Operation::kGelqf;
      else usage(argv[0], 2);
    } else if (arg == "--precision") {
      const std::string p = next();
      if (p == "single") cfg.precision = hw::Precision::kSingle;
      else if (p == "double") cfg.precision = hw::Precision::kDouble;
      else usage(argv[0], 2);
    } else if (arg == "--n") {
      n_override = std::atoll(next());
    } else if (arg == "--nb") {
      nb_override = std::atoi(next());
    } else if (arg == "--config") {
      config_text = next();
    } else if (arg == "--cpu-cap") {
      const std::string spec = next();
      const auto colon = spec.find(':');
      if (colon == std::string::npos) usage(argv[0], 2);
      cfg.cpu_cap = core::CpuCap{static_cast<std::size_t>(std::atoi(spec.c_str())),
                                 std::atof(spec.c_str() + colon + 1)};
    } else if (arg == "--scheduler") {
      cfg.scheduler = next();
    } else if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--stale-models") {
      cfg.stale_models = true;
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage(argv[0], 2);
    }
  }

  // Default N/Nt from the paper's Table II for the chosen platform/op;
  // the extension operations (LU/QR/LQ) are not in Table II and default to
  // the extension-study geometry (40x40 tiles of 2880).
  try {
    const auto row = core::paper::table_ii_row(cfg.platform, cfg.op, cfg.precision);
    cfg.n = n_override.value_or(row.n);
    cfg.nb = nb_override.value_or(row.nb);
  } catch (const std::exception&) {
    if (cfg.op == core::Operation::kGetrf || cfg.op == core::Operation::kGeqrf ||
        cfg.op == core::Operation::kGelqf) {
      cfg.nb = nb_override.value_or(2880);
      cfg.n = n_override.value_or(static_cast<std::int64_t>(cfg.nb) * 40);
    } else if (n_override && nb_override) {
      cfg.n = *n_override;
      cfg.nb = *nb_override;
    } else {
      std::fprintf(stderr, "no Table II defaults for this platform; pass --n and --nb\n");
      return 2;
    }
  }

  const std::size_t gpus = hw::presets::platform_by_name(cfg.platform).gpus.size();
  cfg.gpu_config = config_text.empty()
                       ? power::GpuConfig::uniform(gpus, power::Level::kHigh)
                       : power::GpuConfig::parse(config_text);

  // Derive the observability switches from the requested outputs.
  cfg.obs.trace = !trace_json.empty();
  cfg.obs.metrics = !metrics_json.empty();
  cfg.obs.decision_log = !decisions_json.empty() || model_report;
  cfg.obs.profile = !profile_json.empty() || !profile_html.empty();
  if (cfg.obs.telemetry_period_ms <= 0.0 &&
      (!telemetry_json.empty() || !telemetry_csv.empty() || !trace_json.empty() ||
       cfg.obs.profile)) {
    cfg.obs.telemetry_period_ms = 10.0;  // default sampling for requested outputs
  }

  try {
    const core::ExperimentResult result = core::run_experiment(cfg);
    print_result("experiment", result);
    if (cfg.resilience.any()) {
      const auto& fc = result.fault_counts;
      std::printf("  faults      : %llu capfail, %llu drift, %llu energy-reset, "
                  "%llu dropout (%d counter reset(s) reconstructed)\n",
                  static_cast<unsigned long long>(fc.cap_write_failures),
                  static_cast<unsigned long long>(fc.drifts),
                  static_cast<unsigned long long>(fc.energy_resets),
                  static_cast<unsigned long long>(fc.dropouts),
                  result.energy_counter_resets);
      if (!result.degradation.empty()) {
        std::printf("degradations:\n%s", result.degradation.to_string().c_str());
      }
    }
    if (!degradation_json.empty()) {
      write_file(degradation_json, "degradation",
                 [&](std::ostream& os) { result.degradation.write_json(os); });
    }
    if (result.observability != nullptr) {
      const core::ObservabilityData& data = *result.observability;
      if (!trace_json.empty()) {
        write_file(trace_json, "trace", [&](std::ostream& os) {
          obs::ChromeTraceOptions opts;
          opts.telemetry = &data.telemetry;
          opts.worker_names = data.worker_names;
          obs::write_chrome_trace(os, data.trace, opts);
        });
      }
      if (!metrics_json.empty()) {
        write_file(metrics_json, "metrics",
                   [&](std::ostream& os) { data.metrics.write_json(os); });
      }
      if (!telemetry_json.empty()) {
        write_file(telemetry_json, "telemetry",
                   [&](std::ostream& os) { data.telemetry.write_json(os); });
      }
      if (!telemetry_csv.empty()) {
        write_file(telemetry_csv, "telemetry",
                   [&](std::ostream& os) { data.telemetry.write_csv(os); });
      }
      if (!decisions_json.empty()) {
        write_file(decisions_json, "decisions",
                   [&](std::ostream& os) { data.decisions.write_json(os); });
      }
      if (model_report) {
        std::printf("perf-model accuracy (expected vs realized exec time):\n");
        data.decisions.print_accuracy(std::cout);
      }
      if (cfg.obs.profile) {
        prof::AnalyzeOptions popts;
        popts.decisions = &data.decisions;
        popts.telemetry = &data.telemetry;
        const prof::Profile profile = prof::analyze(data.capture, popts);
        if (!profile_json.empty()) {
          write_file(profile_json, "profile",
                     [&](std::ostream& os) { profile.write_json(os); });
        }
        if (!profile_html.empty()) {
          write_file(profile_html, "report",
                     [&](std::ostream& os) { prof::write_html_report(os, profile); });
        }
      }
    }
    if (baseline && !cfg.gpu_config.is_default()) {
      core::ExperimentConfig base_cfg = cfg;
      base_cfg.gpu_config = power::GpuConfig::uniform(gpus, power::Level::kHigh);
      base_cfg.cpu_cap.reset();
      const core::ExperimentResult base = core::run_experiment(base_cfg);
      print_result("baseline", base);
      std::printf("deltas vs baseline: perf %+.2f %%, energy saving %+.2f %%, "
                  "efficiency %+.2f %%\n",
                  result.perf_delta_pct(base), result.energy_saving_pct(base),
                  result.efficiency_gain_pct(base));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
