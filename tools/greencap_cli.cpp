// greencap — command-line experiment runner.
//
// Runs one capping experiment end-to-end and prints the metrics; the
// scriptable entry point for users who want the paper's protocol without
// writing C++.
//
//   greencap --platform 32-AMD-4-A100 --op gemm --precision double
//            --n 74880 --nb 5760 --config HHBB [--cpu-cap 1:0.48]
//            [--scheduler dmdas] [--baseline] [--stale-models]
//            [--trace-json FILE] [--metrics-json FILE]
//            [--telemetry-period-ms N] [--telemetry-csv FILE]
//            [--decisions-json FILE] [--model-report]
//
// With --baseline the default (all-H) run executes too and the deltas are
// reported, like the paper's figures. The observability flags capture the
// run as a Perfetto-loadable trace, a metrics snapshot, a power/occupancy
// time-series, or a scheduler decision log (all =VALUE or space-separated).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "ckpt/signal.hpp"
#include "core/checkpoint.hpp"
#include "core/cli_flags.hpp"
#include "core/engine.hpp"
#include "core/experiment.hpp"
#include "core/paper_params.hpp"
#include "core/report.hpp"
#include "hw/presets.hpp"
#include "obs/artifact.hpp"
#include "obs/trace_export.hpp"
#include "prof/html_report.hpp"
#include "prof/profile.hpp"

using namespace greencap;

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::printf(
      "usage: %s [options]\n"
      "  --platform NAME     24-Intel-2-V100 | 64-AMD-2-A100 | 32-AMD-4-A100\n"
      "  --op NAME           gemm | potrf | getrf | geqrf | gelqf (default gemm)\n"
      "  --precision P       single | double        (default double)\n"
      "  --n N               matrix order           (default: paper's Table II)\n"
      "  --nb NB             tile order             (default: paper's Table II)\n"
      "  --config CFG        H/B/L letters, one per GPU (default all H)\n"
      "  --cpu-cap PKG:FRAC  RAPL-cap package PKG to FRAC of TDP\n"
      "  --scheduler S       eager|random|ws|dm|dmda|dmdas|dmdae (default dmdas)\n"
      "  --baseline          also run all-H and print deltas\n"
      "  --stale-models      maladaptation ablation (no recalibration)\n"
      "  --seed N            RNG seed (default 42)\n"
      "  --jobs N            worker threads for multi-run campaigns\n"
      "                      (default 1 = serial; 0 = hardware concurrency)\n"
      "observability:\n"
      "  --trace-json FILE        Chrome/Perfetto trace-event export\n"
      "  --metrics-json FILE      metrics registry snapshot\n"
      "  --telemetry-period-ms N  sample power/occupancy every N virtual ms\n"
      "  --telemetry-json FILE    telemetry series as JSON\n"
      "  --telemetry-csv FILE     telemetry series as CSV\n"
      "  --decisions-json FILE    scheduler decision log\n"
      "  --model-report           print perf-model accuracy per codelet/arch\n"
      "  --profile-json FILE      energy-attribution profile (docs/PROFILING.md)\n"
      "  --profile-html FILE      self-contained HTML run report\n"
      "fault injection / resilience (docs/ROBUSTNESS.md):\n"
      "  --faults SPEC            fault plan: kind@gpuN:key=val,... (';'-separated)\n"
      "                           or @FILE for a JSON plan\n"
      "  --fault-seed N           injector RNG seed (default: derived from --seed)\n"
      "  --reconcile-ms N         verify/re-assert cap drift every N virtual ms\n"
      "  --degrade                fall back to H on cap failure instead of aborting\n"
      "  --cap-retries N          retry budget per cap write (default 3)\n"
      "  --degradation-json FILE  degradation report export\n"
      "checkpoint/restart (docs/CHECKPOINTING.md):\n"
      "  --checkpoint FILE        write crash-consistent checkpoints to FILE\n"
      "  --checkpoint-every-ms N  also checkpoint mid-run every N virtual ms\n"
      "  --watchdog-ms N          abort-with-checkpoint if no task completes\n"
      "                           for N virtual ms\n"
      "  --resume FILE            resume a killed/interrupted run from FILE\n"
      "  --ckpt-kill-after N      test hook: _Exit(137) after the Nth write\n",
      argv0);
  std::exit(code);
}

void print_result(const char* title, const core::ExperimentResult& r) {
  std::printf("%s  [%s]\n", title, r.config.describe().c_str());
  std::printf("  time        : %.3f s\n", r.time_s);
  std::printf("  performance : %.1f Gflop/s\n", r.gflops);
  std::printf("  energy      : %.1f J (GPU %.1f, CPU %.1f)\n", r.total_energy_j,
              r.energy.gpu_total(), r.energy.cpu_total());
  std::printf("  efficiency  : %.2f Gflop/s/W\n", r.efficiency_gflops_per_w);
  std::printf("  tasks       : %llu GPU / %llu CPU\n",
              static_cast<unsigned long long>(r.gpu_tasks),
              static_cast<unsigned long long>(r.cpu_tasks));
}

/// Writes `writer(os)` to `path` (checked), or dies with a message.
template <typename Writer>
void write_file(const std::string& path, const char* what, Writer&& writer) {
  if (!obs::write_artifact(path, what, std::forward<Writer>(writer))) {
    std::exit(1);
  }
  std::printf("  wrote %-11s: %s\n", what, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  core::ExperimentConfig cfg;
  cfg.platform = "32-AMD-4-A100";
  bool baseline = false;
  std::int64_t n_value = 0;   // 0 = use the paper's Table II default
  int nb_value = 0;           // 0 = use the paper's Table II default
  std::string config_text;
  std::string trace_json, metrics_json, telemetry_json, telemetry_csv, decisions_json;
  std::string profile_json, profile_html;
  std::string degradation_json;
  bool model_report = false;
  int jobs = 1;
  core::CheckpointOptions ckpt_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage(argv[0], 0);
  }

  core::FlagParser parser;
  parser.str("--platform", &cfg.platform);
  parser.value("--op", "NAME", [&cfg](const std::string& op) -> std::string {
    if (op == "gemm") cfg.op = core::Operation::kGemm;
    else if (op == "potrf") cfg.op = core::Operation::kPotrf;
    else if (op == "getrf") cfg.op = core::Operation::kGetrf;
    else if (op == "geqrf") cfg.op = core::Operation::kGeqrf;
    else if (op == "gelqf") cfg.op = core::Operation::kGelqf;
    else return "expects gemm|potrf|getrf|geqrf|gelqf, got '" + op + "'";
    return {};
  });
  parser.value("--precision", "P", [&cfg](const std::string& p) -> std::string {
    if (p == "single") cfg.precision = hw::Precision::kSingle;
    else if (p == "double") cfg.precision = hw::Precision::kDouble;
    else return "expects single|double, got '" + p + "'";
    return {};
  });
  parser.i64("--n", &n_value);
  parser.i32("--nb", &nb_value);
  parser.str("--config", &config_text);
  parser.value("--cpu-cap", "PKG:FRAC", [&cfg](const std::string& spec) -> std::string {
    const auto colon = spec.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
      return "expects PKG:FRAC, got '" + spec + "'";
    }
    char* end = nullptr;
    const long pkg = std::strtol(spec.c_str(), &end, 10);
    if (end != spec.c_str() + colon || pkg < 0) {
      return "package index must be a non-negative integer, got '" + spec + "'";
    }
    const double frac = std::strtod(spec.c_str() + colon + 1, &end);
    if (*end != '\0' || !(frac > 0.0) || frac > 1.0) {
      return "TDP fraction must be in (0, 1], got '" + spec + "'";
    }
    cfg.cpu_cap = core::CpuCap{static_cast<std::size_t>(pkg), frac};
    return {};
  });
  parser.str("--scheduler", &cfg.scheduler);
  parser.flag("--baseline", &baseline);
  parser.flag("--stale-models", &cfg.stale_models);
  parser.u64("--seed", &cfg.seed);
  parser.i32("--jobs", &jobs);
  parser.str("--trace-json", &trace_json);
  parser.str("--metrics-json", &metrics_json);
  parser.f64("--telemetry-period-ms", &cfg.obs.telemetry_period_ms);
  parser.str("--telemetry-json", &telemetry_json);
  parser.str("--telemetry-csv", &telemetry_csv);
  parser.str("--decisions-json", &decisions_json);
  parser.flag("--model-report", &model_report);
  parser.str("--profile-json", &profile_json);
  parser.str("--profile-html", &profile_html);
  parser.str("--faults", &cfg.resilience.faults);
  parser.u64("--fault-seed", &cfg.resilience.fault_seed);
  parser.f64("--reconcile-ms", &cfg.resilience.reconcile_ms);
  parser.flag("--degrade", &cfg.resilience.degrade);
  parser.i32("--cap-retries", &cfg.resilience.max_cap_retries);
  parser.str("--degradation-json", &degradation_json);
  parser.str("--checkpoint", &ckpt_opts.path);
  parser.f64("--checkpoint-every-ms", &ckpt_opts.every_ms);
  parser.f64("--watchdog-ms", &ckpt_opts.watchdog_ms);
  parser.str("--resume", &ckpt_opts.resume_path);
  parser.i32("--ckpt-kill-after", &ckpt_opts.kill_after);
  if (const std::string err = parser.parse(argc, argv); !err.empty()) {
    std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
    return 2;
  }
  if (jobs < 0) {
    std::fprintf(stderr, "%s: --jobs expects a non-negative value, got %d\n", argv[0], jobs);
    return 2;
  }
  const bool ckpt_active = !ckpt_opts.path.empty() || !ckpt_opts.resume_path.empty() ||
                           ckpt_opts.every_ms > 0.0 || ckpt_opts.watchdog_ms > 0.0;
  if (ckpt_active && jobs != 1) {
    std::fprintf(stderr,
                 "%s: --checkpoint/--resume/--checkpoint-every-ms/--watchdog-ms require "
                 "--jobs 1 (checkpoint sessions are serial); drop --jobs or the checkpoint "
                 "flags\n",
                 argv[0]);
    return 2;
  }

  // Default N/Nt from the paper's Table II for the chosen platform/op;
  // the extension operations (LU/QR/LQ) are not in Table II and default to
  // the extension-study geometry (40x40 tiles of 2880).
  try {
    const auto row = core::paper::table_ii_row(cfg.platform, cfg.op, cfg.precision);
    cfg.n = n_value > 0 ? n_value : row.n;
    cfg.nb = nb_value > 0 ? nb_value : row.nb;
  } catch (const std::exception&) {
    if (cfg.op == core::Operation::kGetrf || cfg.op == core::Operation::kGeqrf ||
        cfg.op == core::Operation::kGelqf) {
      cfg.nb = nb_value > 0 ? nb_value : 2880;
      cfg.n = n_value > 0 ? n_value : static_cast<std::int64_t>(cfg.nb) * 40;
    } else if (n_value > 0 && nb_value > 0) {
      cfg.n = n_value;
      cfg.nb = nb_value;
    } else {
      std::fprintf(stderr, "no Table II defaults for this platform; pass --n and --nb\n");
      return 2;
    }
  }

  const std::size_t gpus = hw::presets::platform_by_name(cfg.platform).gpus.size();
  cfg.gpu_config = config_text.empty()
                       ? power::GpuConfig::uniform(gpus, power::Level::kHigh)
                       : power::GpuConfig::parse(config_text);

  // Derive the observability switches from the requested outputs.
  cfg.obs.trace = !trace_json.empty();
  cfg.obs.metrics = !metrics_json.empty();
  cfg.obs.decision_log = !decisions_json.empty() || model_report;
  cfg.obs.profile = !profile_json.empty() || !profile_html.empty();
  if (cfg.obs.telemetry_period_ms <= 0.0 &&
      (!telemetry_json.empty() || !telemetry_csv.empty() || !trace_json.empty() ||
       cfg.obs.profile)) {
    cfg.obs.telemetry_period_ms = 10.0;  // default sampling for requested outputs
  }

  try {
    // Checkpoint/restart session: replay completed experiments from the
    // resume file, execute the rest (possibly from mid-run state), and
    // commit each fresh result AFTER its artifacts are exported so a
    // resume never re-exports them.
    std::shared_ptr<core::CheckpointSession> session;
    if (ckpt_active) {
      greencap::ckpt::install_signal_handlers();
      session = std::make_shared<core::CheckpointSession>(ckpt_opts);
    }
    bool fresh = true;
    auto run_one = [&session, &fresh](const core::ExperimentConfig& c) {
      fresh = true;
      if (session != nullptr) {
        if (auto replayed = session->try_replay(c)) {
          fresh = false;
          return std::move(*replayed);
        }
      }
      return session != nullptr ? core::run_experiment(c, session.get())
                                : core::run_experiment(c);
    };

    const bool want_baseline = baseline && !cfg.gpu_config.is_default();
    core::ExperimentConfig base_cfg = cfg;
    if (want_baseline) {
      base_cfg.gpu_config = power::GpuConfig::uniform(gpus, power::Level::kHigh);
      base_cfg.cpu_cap.reset();
    }

    core::ExperimentResult result;
    std::optional<core::ExperimentResult> base;
    if (session != nullptr) {
      // Checkpoint sessions are serial by design: prefix replay, then run.
      result = run_one(cfg);
    } else {
      // Everything else goes through the campaign engine; with --baseline
      // the two runs fan out across the pool and still print in serial
      // order because results come back by input index.
      std::vector<core::ExperimentConfig> configs{cfg};
      if (want_baseline) configs.push_back(base_cfg);
      core::EngineOptions eng;
      eng.jobs = jobs;
      core::CampaignEngine engine{eng};
      auto results = engine.run(configs);
      result = std::move(results[0]);
      if (want_baseline) base = std::move(results[1]);
    }
    print_result("experiment", result);
    if (cfg.resilience.any()) {
      const auto& fc = result.fault_counts;
      std::printf("  faults      : %llu capfail, %llu drift, %llu energy-reset, "
                  "%llu dropout (%d counter reset(s) reconstructed)\n",
                  static_cast<unsigned long long>(fc.cap_write_failures),
                  static_cast<unsigned long long>(fc.drifts),
                  static_cast<unsigned long long>(fc.energy_resets),
                  static_cast<unsigned long long>(fc.dropouts),
                  result.energy_counter_resets);
      if (!result.degradation.empty()) {
        std::printf("degradations:\n%s", result.degradation.to_string().c_str());
      }
    }
    if (!degradation_json.empty()) {
      write_file(degradation_json, "degradation",
                 [&](std::ostream& os) { result.degradation.write_json(os); });
    }
    if (result.observability != nullptr) {
      const core::ObservabilityData& data = *result.observability;
      if (!trace_json.empty()) {
        write_file(trace_json, "trace", [&](std::ostream& os) {
          obs::ChromeTraceOptions opts;
          opts.telemetry = &data.telemetry;
          opts.worker_names = data.worker_names;
          obs::write_chrome_trace(os, data.trace, opts);
        });
      }
      if (!metrics_json.empty()) {
        write_file(metrics_json, "metrics",
                   [&](std::ostream& os) { data.metrics.write_json(os); });
      }
      if (!telemetry_json.empty()) {
        write_file(telemetry_json, "telemetry",
                   [&](std::ostream& os) { data.telemetry.write_json(os); });
      }
      if (!telemetry_csv.empty()) {
        write_file(telemetry_csv, "telemetry",
                   [&](std::ostream& os) { data.telemetry.write_csv(os); });
      }
      if (!decisions_json.empty()) {
        write_file(decisions_json, "decisions",
                   [&](std::ostream& os) { data.decisions.write_json(os); });
      }
      if (model_report) {
        std::printf("perf-model accuracy (expected vs realized exec time):\n");
        data.decisions.print_accuracy(std::cout);
      }
      if (cfg.obs.profile) {
        prof::AnalyzeOptions popts;
        popts.decisions = &data.decisions;
        popts.telemetry = &data.telemetry;
        const prof::Profile profile = prof::analyze(data.capture, popts);
        if (!profile_json.empty()) {
          write_file(profile_json, "profile",
                     [&](std::ostream& os) { profile.write_json(os); });
        }
        if (!profile_html.empty()) {
          write_file(profile_html, "report",
                     [&](std::ostream& os) { prof::write_html_report(os, profile); });
        }
      }
    }
    if (session != nullptr && fresh) {
      session->commit(cfg, result);
    }
    if (want_baseline) {
      if (session != nullptr) {
        base = run_one(base_cfg);
        if (fresh) {
          session->commit(base_cfg, *base);
        }
      }
      print_result("baseline", *base);
      std::printf("deltas vs baseline: perf %+.2f %%, energy saving %+.2f %%, "
                  "efficiency %+.2f %%\n",
                  result.perf_delta_pct(*base), result.energy_saving_pct(*base),
                  result.efficiency_gain_pct(*base));
    }
    if (session != nullptr) {
      session->check_interrupt();
    }
  } catch (const ckpt::InterruptedError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return ckpt::kInterruptExitCode;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
