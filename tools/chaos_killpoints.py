#!/usr/bin/env python3
"""Kill-point chaos suite for checkpoint/restart (docs/CHECKPOINTING.md).

Drives a checkpoint-aware GreenCap binary (a bench figure or the CLI)
through seeded kill points and proves the headline crash-consistency
property: a campaign killed at the Nth checkpoint write (--ckpt-kill-after
N fires _Exit(137) the instant the rename lands, like SIGKILL) and then
resumed — as many times as it takes — produces artifacts BYTE-IDENTICAL
to an uninterrupted run, and identical stdout.

For every kill point the suite also validates the surviving checkpoint
file with tools/check_checkpoint.py, and once per run it corrupts a
checkpoint (bit flip, then truncation) and asserts the resume rejects it
with a nonzero exit instead of continuing from garbage.

Stdlib only. Exit 0 when every kill point round-trips, 1 otherwise.

Example (the CI invocation):
  chaos_killpoints.py --binary build/bench/fig3_double_configs \
      --kill-points 1,2,3,5,8 --every-ms 5000 \
      -- --quick --summary-json summary.json
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

KILL_EXIT = 137
MAX_RESUMES = 64


def run(cmd: list[str], cwd: Path) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, cwd=cwd, capture_output=True, text=True)


def artifact_args(template: list[str], directory: Path) -> tuple[list[str], list[Path]]:
    """Rewrites FILE operands of known artifact flags to bare filenames
    (each run uses its own cwd, so stdout lines naming the file stay
    identical across runs), returning the rewritten argv tail and the
    artifact paths to compare."""
    out: list[str] = []
    artifacts: list[Path] = []
    expects_file = False
    for tok in template:
        if expects_file:
            name = Path(tok).name
            artifacts.append(directory / name)
            out.append(name)
            expects_file = False
            continue
        out.append(tok)
        if tok.startswith("--") and tok.endswith(("-json", "-csv", "-html")):
            expects_file = True
    return out, artifacts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", type=Path, required=True,
                        help="checkpoint-aware GreenCap binary to drive")
    parser.add_argument("--kill-points", default="1,2,3,5,8",
                        help="comma-separated --ckpt-kill-after values (>=5 for CI)")
    parser.add_argument("--every-ms", default="5000",
                        help="--checkpoint-every-ms virtual period")
    parser.add_argument("--checker", type=Path,
                        default=Path(__file__).resolve().parent / "check_checkpoint.py",
                        help="check_checkpoint.py to validate surviving files")
    parser.add_argument("args", nargs="*",
                        help="binary arguments after '--'; FILE operands of "
                             "--*-json/--*-csv/--*-html flags are treated as "
                             "artifacts and compared byte-for-byte")
    args = parser.parse_args()
    binary = args.binary.resolve()
    kill_points = [int(k) for k in args.kill_points.split(",") if k]
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="chaos_killpoints_") as tmp:
        root = Path(tmp)

        # Reference: one uninterrupted run, no checkpointing at all.
        ref_dir = root / "ref"
        ref_dir.mkdir()
        ref_args, ref_artifacts = artifact_args(args.args, ref_dir)
        ref = run([str(binary), *ref_args], ref_dir)
        if ref.returncode != 0:
            print(f"FAIL reference run exited {ref.returncode}:\n{ref.stderr}",
                  file=sys.stderr)
            return 1
        for art in ref_artifacts:
            if not art.is_file():
                print(f"FAIL reference artifact {art.name} was not written",
                      file=sys.stderr)
                return 1

        last_checkpoint: Path | None = None
        for kill in kill_points:
            kdir = root / f"kill{kill}"
            kdir.mkdir()
            kill_args, kill_artifacts = artifact_args(args.args, kdir)
            ckpt = kdir / "campaign.gckp"
            base = [str(binary), *kill_args, "--checkpoint", str(ckpt),
                    "--checkpoint-every-ms", args.every_ms]

            proc = run([*base, "--ckpt-kill-after", str(kill)], kdir)
            if proc.returncode != KILL_EXIT:
                failures.append(
                    f"kill={kill}: expected exit {KILL_EXIT} from the kill hook, "
                    f"got {proc.returncode}")
                continue
            if not ckpt.is_file():
                failures.append(f"kill={kill}: no checkpoint file survived the kill")
                continue

            check = run([sys.executable, str(args.checker), str(ckpt)], kdir)
            if check.returncode != 0:
                failures.append(
                    f"kill={kill}: surviving checkpoint failed validation:\n"
                    f"{check.stderr}")
                continue
            last_checkpoint = root / f"kept_{kill}.gckp"
            shutil.copyfile(ckpt, last_checkpoint)

            resumes = 0
            while resumes < MAX_RESUMES:
                proc = run([*base, "--resume", str(ckpt)], kdir)
                resumes += 1
                if proc.returncode != KILL_EXIT:
                    break
            if proc.returncode != 0:
                failures.append(
                    f"kill={kill}: resume #{resumes} exited {proc.returncode}:\n"
                    f"{proc.stderr}")
                continue

            if proc.stdout != ref.stdout:
                failures.append(
                    f"kill={kill}: resumed stdout differs from the reference run")
            for ref_art, kill_art in zip(ref_artifacts, kill_artifacts):
                if not kill_art.is_file():
                    failures.append(f"kill={kill}: artifact {kill_art.name} missing")
                elif ref_art.read_bytes() != kill_art.read_bytes():
                    failures.append(
                        f"kill={kill}: artifact {kill_art.name} is not "
                        f"byte-identical to the reference")
            if not any(f.startswith(f"kill={kill}:") for f in failures):
                print(f"kill={kill}: OK after {resumes} resume(s) — "
                      f"{len(kill_artifacts)} artifact(s) byte-identical")

        # Corrupt-checkpoint rejection: a resume must refuse a bit-flipped
        # or truncated file with a nonzero exit, never run from garbage.
        if last_checkpoint is not None:
            cdir = root / "corrupt"
            cdir.mkdir()
            corrupt_args, _ = artifact_args(args.args, cdir)
            raw = bytearray(last_checkpoint.read_bytes())
            raw[len(raw) // 2] ^= 0x40
            flipped = cdir / "flipped.gckp"
            flipped.write_bytes(bytes(raw))
            truncated = cdir / "truncated.gckp"
            truncated.write_bytes(last_checkpoint.read_bytes()[: len(raw) * 2 // 3])
            for bad in (flipped, truncated):
                proc = run([str(binary), *corrupt_args, "--resume", str(bad)], cdir)
                if proc.returncode == 0:
                    failures.append(f"resume accepted corrupt checkpoint {bad.name}")
                elif "checkpoint" not in (proc.stderr + proc.stdout).lower():
                    failures.append(
                        f"rejection of {bad.name} does not mention the checkpoint:\n"
                        f"{proc.stderr}")
                else:
                    print(f"corrupt {bad.name}: rejected (exit {proc.returncode})")
        else:
            failures.append("no kill point produced a checkpoint to corrupt")

    if failures:
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        print(f"{len(failures)} failure(s)", file=sys.stderr)
        return 1
    print(f"chaos suite: {len(kill_points)} kill point(s) round-tripped "
          f"byte-identically; corrupt checkpoints rejected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
